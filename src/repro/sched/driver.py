"""The scheduler driver: behavior → state transition graph.

:class:`Scheduler` walks the behavior's region tree and assembles STG
fragments:

* blocks — branching path-based schedules (:mod:`repro.sched.branching`);
* loops — sequential or software-pipelined, whichever yields the
  shorter expected schedule (:mod:`repro.sched.loops`);
* runs of adjacent independent loops — concurrent phase kernels when
  they beat back-to-back execution (:mod:`repro.sched.concurrent`).

This provides the paper's scheduler interface (their reference [13],
Wavesched): loop unrolling, functional pipelining across ``if``
constructs, and concurrent loop optimization, all behind one call.

With a :class:`~repro.sched.regioncache.RegionScheduleCache` attached,
every schedulable *unit* (a block, a loop, or a run of independent
adjacent loops) is built into a private scratch STG and spliced into
the target, keyed by its exact content — so a candidate that differs
from its parent in one block reuses every other unit's schedule
verbatim, and the Markov analysis is assembled from memoized
per-fragment solves (see ``docs/performance.md``).  The spliced STG is
identical — state ids, labels, transition order — to the one the plain
in-place walk produces, which is what makes the incremental and
non-incremental evaluation paths bit-compatible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..cdfg.analysis import GuardAnalysis
from ..cdfg.regions import (Behavior, BlockRegion, LoopRegion, Region,
                            SeqRegion)
from ..errors import MarkovError, ScheduleError
from ..hw import Allocation, Library
from ..numeric import get_backend
from ..obs.trace import NULL_TRACER, AnyTracer
from ..stg.markov import (average_schedule_length,
                          average_schedule_lengths, expected_visits,
                          throughput)
from ..stg.model import Stg
from .branching import ScheduleContext, block_fragment
from .concurrent import concurrent_fragment, independent
from .fragments import Frag, compose, connect, single_entry
from .loops import (_cond_count, _pipelined_or_none, loop_fragment,
                    sequential_loop)
from .regioncache import CachedFragment, RegionScheduleCache, splice
from .types import BranchProbs, ResourceModel, SchedConfig


@dataclass
class ScheduleResult:
    """A scheduled behavior: the STG plus the inputs that produced it."""

    stg: Stg
    behavior: Behavior
    library: Library
    allocation: Allocation
    config: SchedConfig
    branch_probs: Optional[BranchProbs] = None
    #: Expected visits per state, memoized; pre-filled by the incremental
    #: scheduler from per-fragment solves (splicing), computed on demand
    #: from the full chain otherwise.
    visits: Optional[Dict[int, float]] = field(
        default=None, repr=False, compare=False)

    def expected_visits(self) -> Dict[int, float]:
        """Expected entries into each state per execution, memoized."""
        if self.visits is None:
            self.visits = expected_visits(self.stg)
        return self.visits

    def average_length(self) -> float:
        """Expected cycles per execution (paper's average schedule
        length)."""
        return float(sum(self.expected_visits().values()))

    def throughput(self) -> float:
        """Executions per cycle."""
        length = self.average_length()
        if length <= 0:
            from ..errors import MarkovError
            raise MarkovError(
                f"{self.stg.name}: non-positive schedule length")
        return 1.0 / length

    def n_states(self) -> int:
        return len(self.stg)


@dataclass
class PendingVisits:
    """A scheduled candidate whose spliced-visit assembly was deferred.

    Produced by :class:`Scheduler` under ``defer_visits=True`` (the
    evaluation engine's generation-deferred mode): scheduling completes
    normally but the final per-fragment Markov solves are left queued so
    *many candidates'* dirty fragments can go out in one cross-candidate
    flush (:func:`resolve_visits`).  The flush need not cover a whole
    generation: the streaming pipeline flushes opportunistically every
    ``AdmissionPolicy.flush_size`` candidates, which is safe because
    every flush composition assembles bit-identical totals.  Holds
    everything the assembly
    needs: the result to fill, the once-per-execution states outside any
    fragment, the spliced pieces in splice order, and the candidate's
    ``schedule`` span (closed, but its attributes stay writable) for the
    ``markov_fallback`` annotation.
    """

    result: ScheduleResult
    once: List[int]
    pieces: List[tuple]
    span: object = None


class Scheduler:
    """Schedules a behavior under a library / allocation / clock.

    Args:
        region_cache: optional unit-schedule memo.  When given, every
            schedulable unit is built scratch-and-spliced through it and
            the result's visit totals come from per-fragment Markov
            solves.  The cache must have been created for this exact
            evaluation context (see ``RegionScheduleCache.context_fp``);
            pass a ``max_entries=0`` cache for the non-incremental
            baseline that still shares the identical code path.
        tracer: optional :class:`~repro.obs.trace.Tracer`.  The run is
            wrapped in a ``schedule`` span (with a ``markov_fallback``
            attribute when the spliced-visit assembly falls back to a
            full-chain solve).  Tracing reads clocks only — it never
            changes scheduling decisions, so traced and untraced runs
            produce identical STGs.
    """

    def __init__(self, behavior: Behavior, library: Library,
                 allocation: Allocation,
                 config: Optional[SchedConfig] = None,
                 branch_probs: Optional[BranchProbs] = None,
                 region_cache: Optional[RegionScheduleCache] = None,
                 tracer: Optional[AnyTracer] = None,
                 defer_visits: bool = False) -> None:
        self.behavior = behavior
        self.library = library
        self.allocation = allocation
        self.config = config or SchedConfig()
        self.branch_probs = branch_probs
        self.region_cache = region_cache
        self.tracer: AnyTracer = tracer if tracer is not None \
            else NULL_TRACER
        #: With a region cache attached, skip the final spliced-visit
        #: assembly and expose it as :attr:`pending` instead, so the
        #: engine can solve a whole generation's dirty fragments in one
        #: cross-candidate flush (see :func:`resolve_visits`).
        self.defer_visits = defer_visits
        self.pending: Optional[PendingVisits] = None
        self._main_stg: Optional[Stg] = None
        # (CachedFragment, fragment-local -> main-STG id map) per
        # top-level spliced unit, in splice order.
        self._pieces: List[tuple] = []

    def schedule(self) -> ScheduleResult:
        """Produce the STG.

        Raises:
            ScheduleError: if the allocation cannot implement some
                operation at all.
        """
        with self.tracer.span("schedule",
                              behavior=self.behavior.name) as span:
            result = self._schedule(span)
            span.set(states=len(result.stg.states),
                     incremental=self.region_cache is not None)
            return result

    def _schedule(self, span) -> ScheduleResult:
        behavior = self.behavior
        stg = Stg(behavior.name)
        self._main_stg = stg
        self._pieces = []
        rm = ResourceModel(
            behavior.graph, self.library, self.allocation,
            array_ports={name: decl.ports
                         for name, decl in behavior.arrays.items()})
        ctx = ScheduleContext(
            behavior=behavior, graph=behavior.graph, rm=rm,
            config=self.config, probs=self.branch_probs, stg=stg,
            guards=GuardAnalysis(behavior.graph))
        frag = self._region(ctx, behavior.region)
        exit_sid = stg.add_state(label="done")
        # States outside any spliced fragment; each is entered exactly
        # once per execution.
        once = [exit_sid]
        if frag.is_empty:
            entry_sid = stg.add_state(label="entry")
            stg.add_transition(entry_sid, exit_sid, 1.0)
            once.append(entry_sid)
        else:
            connect(stg, frag.exits, [(exit_sid, 1.0, "")])
            entry_sid = single_entry(stg, frag, label="entry")
            if len(frag.entries) != 1:
                once.append(entry_sid)  # fresh dispatch state
        stg.entry, stg.exit = entry_sid, exit_sid
        stg.validate()
        result = ScheduleResult(stg, behavior, self.library, self.allocation,
                                self.config, self.branch_probs)
        if self.region_cache is not None:
            if self.defer_visits:
                self.pending = PendingVisits(result, once,
                                             list(self._pieces), span)
            else:
                result.visits = self._spliced_visits(stg, once, span)
        return result

    # ------------------------------------------------------------------
    def _region(self, ctx: ScheduleContext, region: Region) -> Frag:
        if isinstance(region, SeqRegion):
            return self._sequence(ctx, region.children)
        if self.region_cache is not None:
            return self._memoized(ctx, [region])
        if isinstance(region, BlockRegion):
            return block_fragment(ctx, region.nodes)
        if isinstance(region, LoopRegion):
            return loop_fragment(ctx, region, self._region)
        raise ScheduleError(f"unknown region {type(region).__name__}")

    def _sequence(self, ctx: ScheduleContext,
                  children: List[Region]) -> Frag:
        frags: List[Frag] = []
        i = 0
        while i < len(children):
            child = children[i]
            run = self._independent_loop_run(ctx, children, i)
            if len(run) >= 2:
                # A run is one schedulable unit: its concurrent-vs-
                # sequential decision depends on every loop in it.
                if self.region_cache is not None:
                    frag = self._memoized(ctx, run)
                else:
                    frag = self._best_loop_composition(ctx, run)
                frags.append(frag)
                i += len(run)
                continue
            frags.append(self._region(ctx, child))
            i += 1
        return compose(ctx.stg, frags)

    def _independent_loop_run(self, ctx: ScheduleContext,
                              children: List[Region],
                              start: int) -> List[LoopRegion]:
        """Maximal run of pairwise-independent adjacent loops."""
        if not ctx.config.allow_concurrent_loops:
            return []
        run: List[LoopRegion] = []
        for child in children[start:]:
            if not isinstance(child, LoopRegion):
                break
            if any(not independent(ctx, child, other) for other in run):
                break
            run.append(child)
        return run

    def _loop(self, ctx: ScheduleContext, loop: LoopRegion) -> Frag:
        """One loop, routed through the cache when one is attached."""
        if self.region_cache is not None:
            return self._memoized(ctx, [loop])
        return loop_fragment(ctx, loop, self._region)

    def _best_loop_composition(self, ctx: ScheduleContext,
                               run: List[LoopRegion]) -> Frag:
        """Concurrent phases vs back-to-back loops: keep the shorter."""
        if self.region_cache is not None:
            conc = self._variant(
                ctx, list(run), "conc",
                lambda c: concurrent_fragment(
                    c, run, cache=self.region_cache,
                    behavior=self.behavior))
            if get_backend().batched:
                seq_scratch = self._measuring_build(
                    ctx, lambda c: compose(
                        c.stg, [self._loop(c, lp) for lp in run]))
                conc_len, seq_len = self._measure_pair(conc, seq_scratch)
            else:
                conc_len = self._variant_len(conc)
                seq_len = self._measure(
                    ctx, lambda c: compose(
                        c.stg, [self._loop(c, lp) for lp in run]))
            if conc_len is not None and (seq_len is None
                                         or conc_len < seq_len):
                frag, _ = splice(ctx.stg, conc)
                return frag
            return compose(
                ctx.stg, [self._loop(ctx, lp) for lp in run])
        if get_backend().batched:
            conc_scratch = self._measuring_build(
                ctx, lambda c: concurrent_fragment(c, run))
            seq_scratch = self._measuring_build(
                ctx, lambda c: compose(
                    c.stg, [self._loop(c, lp) for lp in run]))
            stgs = [s for s in (conc_scratch, seq_scratch)
                    if s is not None]
            lengths = iter(average_schedule_lengths(stgs))
            conc_len = next(lengths) if conc_scratch is not None else None
            seq_len = next(lengths) if seq_scratch is not None else None
        else:
            conc_len = self._measure(
                ctx, lambda c: concurrent_fragment(c, run))
            seq_len = self._measure(
                ctx, lambda c: compose(
                    c.stg, [self._loop(c, lp) for lp in run]))
        if conc_len is not None and (seq_len is None
                                     or conc_len < seq_len):
            frag = concurrent_fragment(ctx, run)
            assert frag is not None
            return frag
        return compose(
            ctx.stg, [self._loop(ctx, lp) for lp in run])

    @staticmethod
    def _measuring_build(ctx: ScheduleContext,
                         build: Callable[[ScheduleContext],
                                         Optional[Frag]]
                         ) -> Optional[Stg]:
        """Build a fragment into a measuring scratch STG (entry/exit
        wrapped); None when the build fails or is not applicable."""
        scratch = Stg("scratch")
        sub = ctx.with_stg(scratch)
        try:
            frag = build(sub)
        except ScheduleError:
            return None
        if frag is None:
            return None
        entry = scratch.add_state(label="in")
        exit_ = scratch.add_state(label="out")
        if frag.is_empty:
            scratch.add_transition(entry, exit_, 1.0)
        else:
            connect(scratch, [(entry, 1.0, "")], frag.entries)
            connect(scratch, frag.exits, [(exit_, 1.0, "")])
        scratch.entry, scratch.exit = entry, exit_
        return scratch

    @staticmethod
    def _measure(ctx: ScheduleContext,
                 build: Callable[[ScheduleContext], Optional[Frag]]
                 ) -> Optional[float]:
        """Expected cycles of a fragment built into a scratch STG."""
        scratch = Scheduler._measuring_build(ctx, build)
        if scratch is None:
            return None
        return average_schedule_length(scratch)

    # -- incremental path ----------------------------------------------
    def _memoized(self, ctx: ScheduleContext,
                  regions: Sequence[Region]) -> Frag:
        """Build-or-fetch one schedulable unit and splice it into
        ``ctx.stg``."""
        cache = self.region_cache
        assert cache is not None
        if cache.max_entries > 0:
            key: Optional[str] = cache.key_for(self.behavior, regions,
                                               ctx.guards)
            cached = cache.get(key)
        else:
            # Non-incremental baseline: skip the (pure-overhead) key
            # computation entirely; still count the build as a miss.
            key = None
            cached = None
            cache.stats.misses += 1
        if cached is None:
            scratch = Stg(f"{self.behavior.name}:unit")
            built0, reused0 = cache.states_built, cache.states_reused
            frag = self._build_unit(ctx.with_stg(scratch), regions)
            cached = CachedFragment(scratch, list(frag.entries),
                                    list(frag.exits))
            # Count each state once, at the level that scheduled it:
            # states spliced from nested unit / variant entries were
            # already booked built or reused down there.
            nested = (cache.states_built - built0
                      + cache.states_reused - reused0)
            cache.states_built += max(0, len(scratch) - nested)
            if key is not None:
                cache.put(key, cached)
        else:
            cache.states_reused += len(cached.stg)
        out_frag, idmap = splice(ctx.stg, cached)
        if ctx.stg is self._main_stg:
            self._pieces.append((cached, idmap))
        return out_frag

    def _build_unit(self, ctx: ScheduleContext,
                    regions: Sequence[Region]) -> Frag:
        """Schedule one unit from scratch (into the unit's own STG)."""
        if len(regions) == 1:
            region = regions[0]
            if isinstance(region, BlockRegion):
                return block_fragment(ctx, region.nodes)
            if isinstance(region, LoopRegion):
                return self._loop_unit(ctx, region)
            raise ScheduleError(
                f"cannot build unit from {type(region).__name__}")
        return self._best_loop_composition(ctx, list(regions))

    def _loop_unit(self, ctx: ScheduleContext, loop: LoopRegion) -> Frag:
        """Cached replica of :func:`loop_fragment`.

        The sequential / pipelined variants are built (at most) once
        each through the cache and the winner is spliced, where the
        plain walk builds the winner a second time after measuring it.
        The decision sequence — build pipelined, measure, count
        conditions, build sequential, measure, compare — mirrors
        ``loop_fragment`` exactly, so the chosen variant (and any
        propagated ScheduleError / MarkovError) is identical.
        """
        if not ctx.config.allow_pipelining:
            seq = self._variant(
                ctx, [loop], "seq",
                lambda c: sequential_loop(c, loop, self._region))
            if seq.build_failed:
                # Rebuild in place to raise the same ScheduleError the
                # plain walk would.
                return sequential_loop(ctx, loop, self._region)
            frag, _ = splice(ctx.stg, seq)
            return frag
        pipe = self._variant(ctx, [loop], "pipe",
                             lambda c: _pipelined_or_none(c, loop))
        if get_backend().batched and _cond_count(ctx, loop) <= 8:
            # No early-out possible below the condition-count shortcut:
            # build both variants, then solve their measuring chains in
            # one flush (pipe first, preserving error order).
            seq = self._variant(
                ctx, [loop], "seq",
                lambda c: sequential_loop(c, loop, self._region))
            self._measure_variants([pipe, seq])
            pipe_len = self._variant_len(pipe)
            seq_len = self._variant_len(seq)
        else:
            pipe_len = self._variant_len(pipe)
            if pipe_len is not None and _cond_count(ctx, loop) > 8:
                frag, _ = splice(ctx.stg, pipe)
                return frag
            seq = self._variant(
                ctx, [loop], "seq",
                lambda c: sequential_loop(c, loop, self._region))
            seq_len = self._variant_len(seq)
        if pipe_len is not None and (seq_len is None or pipe_len < seq_len):
            frag, _ = splice(ctx.stg, pipe)
            return frag
        if seq.build_failed:
            return sequential_loop(ctx, loop, self._region)
        frag, _ = splice(ctx.stg, seq)
        return frag

    def _variant(self, ctx: ScheduleContext, regions: List[Region],
                 kind: str, build: Callable[[ScheduleContext],
                                            Optional[Frag]]
                 ) -> CachedFragment:
        """Build-or-fetch one design variant of a unit.

        Variants (``"pipe"`` / ``"seq"`` / ``"conc"``) share the unit's
        content key with a suffix, so measuring a variant and then
        keeping it costs one build instead of two, and a failed build
        (ScheduleError or not-applicable) is remembered rather than
        retried.
        """
        cache = self.region_cache
        assert cache is not None
        if cache.max_entries > 0:
            key: Optional[str] = cache.key_for(self.behavior, regions,
                                               ctx.guards, variant=kind)
            cached = cache.get(key)
        else:
            key = None
            cached = None
            cache.stats.misses += 1
        if cached is not None:
            if not cached.build_failed:
                cache.states_reused += len(cached.stg)
            return cached
        scratch = Stg(f"{self.behavior.name}:{kind}")
        built0, reused0 = cache.states_built, cache.states_reused
        try:
            frag = build(ctx.with_stg(scratch))
        except ScheduleError:
            frag = None
        if frag is None:
            cached = CachedFragment(Stg("failed"), build_failed=True)
        else:
            cached = CachedFragment(scratch, list(frag.entries),
                                    list(frag.exits))
            nested = (cache.states_built - built0
                      + cache.states_reused - reused0)
            cache.states_built += max(0, len(scratch) - nested)
        if key is not None:
            cache.put(key, cached)
        return cached

    def _variant_len(self, cached: CachedFragment) -> Optional[float]:
        """Expected cycles of a variant, measured at most once."""
        if cached.build_failed:
            return None
        if cached.measured_len is None:
            cached.measured_len = self._measure_cached(cached)
        return cached.measured_len

    @staticmethod
    def _measuring_stg(cached: CachedFragment) -> Stg:
        """A cached variant spliced into its measuring chain (the same
        wrapper ``_measure`` builds)."""
        scratch = Stg("scratch")
        frag, _ = splice(scratch, cached)
        entry = scratch.add_state(label="in")
        exit_ = scratch.add_state(label="out")
        if frag.is_empty:
            scratch.add_transition(entry, exit_, 1.0)
        else:
            connect(scratch, [(entry, 1.0, "")], frag.entries)
            connect(scratch, frag.exits, [(exit_, 1.0, "")])
        scratch.entry, scratch.exit = entry, exit_
        return scratch

    def _measure_cached(self, cached: CachedFragment) -> float:
        """Measure a cached variant exactly as ``_measure`` would."""
        scratch = self._measuring_stg(cached)
        cache = self.region_cache
        assert cache is not None
        t0 = time.perf_counter()
        try:
            return average_schedule_length(scratch)
        finally:
            cache.solver_time += time.perf_counter() - t0

    def _measure_variants(self, variants: List[CachedFragment]) -> None:
        """Fill ``measured_len`` for several variants in one flush.

        Batched-backend companion to :meth:`_variant_len`: the
        measuring chains of every unmeasured, successfully built
        variant are solved together.  A MarkovError from any chain
        propagates in list order, mirroring the sequential measures.
        """
        pending: List[CachedFragment] = []
        seen = set()
        for variant in variants:
            if variant.build_failed or variant.measured_len is not None:
                continue
            if id(variant) in seen:
                continue
            seen.add(id(variant))
            pending.append(variant)
        if not pending:
            return
        scratches = [self._measuring_stg(v) for v in pending]
        cache = self.region_cache
        assert cache is not None
        t0 = time.perf_counter()
        try:
            lengths = average_schedule_lengths(scratches)
        finally:
            cache.solver_time += time.perf_counter() - t0
        for variant, length in zip(pending, lengths):
            variant.measured_len = length

    def _measure_pair(self, variant: CachedFragment,
                      scratch: Optional[Stg]
                      ) -> "tuple[Optional[float], Optional[float]]":
        """Measure a cached variant and a plain scratch chain together.

        One flush covers both chains (variant first, so its MarkovError
        — the one the sequential path would hit first — wins on error).
        Returns ``(variant_len, scratch_len)``.
        """
        stgs: List[Stg] = []
        measure_variant = (not variant.build_failed
                           and variant.measured_len is None)
        if measure_variant:
            stgs.append(self._measuring_stg(variant))
        if scratch is not None:
            stgs.append(scratch)
        lengths: List[float] = []
        if stgs:
            cache = self.region_cache
            assert cache is not None
            t0 = time.perf_counter()
            try:
                lengths = average_schedule_lengths(stgs)
            finally:
                cache.solver_time += time.perf_counter() - t0
        pos = 0
        if measure_variant:
            variant.measured_len = lengths[pos]
            pos += 1
        variant_len = None if variant.build_failed else variant.measured_len
        scratch_len = lengths[pos] if scratch is not None else None
        return variant_len, scratch_len

    def _spliced_visits(self, stg: Stg, once: List[int],
                        span=None) -> Dict[int, float]:
        """Assemble expected visits from memoized per-fragment solves.

        Sequential composition hands the full unit of probability mass
        to each top-level fragment per execution, so a fragment's visit
        totals — solved once, in isolation, under its entry-port weights
        — are exact wherever the fragment is spliced.  Falls back to one
        full-chain solve if any fragment's sub-chain is singular or the
        fragments do not tile the STG (both content-dependent, so the
        fallback decision is identical across cache modes).
        """
        cache = self.region_cache
        assert cache is not None
        if get_backend().batched and self._pieces:
            # One flush covers every dirty fragment of this candidate —
            # the primary batch point of the batched numeric backend.
            fragment_visits_list = cache.visits_of_many(
                [cached for cached, _ in self._pieces])
        else:
            fragment_visits_list = []
            for cached, _idmap in self._pieces:
                fv = cache.visits_of(cached)
                fragment_visits_list.append(fv)
                if fv is None:
                    break
        visits = _splice_totals(stg, once, self._pieces,
                                fragment_visits_list)
        if visits is not None:
            return visits
        if span is not None:
            # Singular sub-chain or non-tiling fragments: the whole
            # chain is re-solved (see docs/observability.md on why a
            # high fallback count hurts incremental evaluation).
            span.set(markov_fallback=True)
        return _full_visits(stg, cache)


def _splice_totals(stg: Stg, once: List[int], pieces: List[tuple],
                   fragment_visits_list) -> Optional[Dict[int, float]]:
    """Splice per-fragment visit totals into whole-STG visits.

    Returns None when any fragment's sub-chain could not be solved in
    isolation or the fragments do not tile the STG — callers then fall
    back to one full-chain solve (:func:`_full_visits`).  Iteration
    order must match ``expected_visits()`` (transient states by id,
    exit last): downstream sums over ``.values()`` are float-order
    sensitive, and every evaluation path must produce bit-identical
    metrics.
    """
    visits: Dict[int, float] = {}
    for (cached, idmap), fv in zip(pieces, fragment_visits_list):
        if fv is None:
            return None
        for local_sid, v in fv.items():
            visits[idmap[local_sid]] = v
    for sid in once:
        visits[sid] = 1.0
    if len(visits) != len(stg.states):
        return None
    ordered = {sid: visits[sid] for sid in sorted(visits)
               if sid != stg.exit}
    ordered[stg.exit] = visits[stg.exit]
    return ordered


def _full_visits(stg: Stg, cache: RegionScheduleCache) -> Dict[int, float]:
    """One full-chain solve, timed and counted like the classic path."""
    t0 = time.perf_counter()
    try:
        full = expected_visits(stg)
    finally:
        cache.solver_time += time.perf_counter() - t0
    cache.markov_full += 1
    return full


def resolve_visits(pendings: Sequence[PendingVisits],
                   cache: RegionScheduleCache) -> List[Optional[Exception]]:
    """Fill ``result.visits`` for many deferred candidates in one flush.

    The cross-candidate batch point of the batched numeric backend: the
    dirty fragments of *every* pending candidate are solved through one
    :meth:`~repro.sched.regioncache.RegionScheduleCache.visits_of_many`
    call — fragments shared between candidates are solved once and
    reused, exactly as the sequential walk's memoization would have
    reused them, and each sub-chain's solution is independent of its
    flushmates, so the assembled totals are bit-identical to the
    per-candidate path.  Callers may therefore flush any sub-batch at
    any time: the barrier engine flushes once per generation, while the
    streaming engine flushes every few candidates to keep results
    flowing — both produce the same numbers.

    Returns one entry per pending candidate: None on success, or the
    :class:`~repro.errors.MarkovError` its full-chain fallback raised —
    the error the sequential path would have raised from inside
    ``schedule()``, which the engine maps to an unschedulable score.
    """
    fragment_visits_list = cache.visits_of_many(
        [cached for p in pendings for cached, _ in p.pieces])
    out: List[Optional[Exception]] = []
    pos = 0
    for p in pendings:
        take = fragment_visits_list[pos:pos + len(p.pieces)]
        pos += len(p.pieces)
        visits = _splice_totals(p.result.stg, p.once, p.pieces, take)
        if visits is None:
            if p.span is not None:
                p.span.set(markov_fallback=True)
            try:
                visits = _full_visits(p.result.stg, cache)
            except MarkovError as err:
                out.append(err)
                continue
        p.result.visits = visits
        out.append(None)
    return out


def schedule_behavior(behavior: Behavior, library: Library,
                      allocation: Allocation,
                      config: Optional[SchedConfig] = None,
                      branch_probs: Optional[BranchProbs] = None
                      ) -> ScheduleResult:
    """Convenience wrapper around :class:`Scheduler`."""
    return Scheduler(behavior, library, allocation, config,
                     branch_probs).schedule()

"""The scheduler driver: behavior → state transition graph.

:class:`Scheduler` walks the behavior's region tree and assembles STG
fragments:

* blocks — branching path-based schedules (:mod:`repro.sched.branching`);
* loops — sequential or software-pipelined, whichever yields the
  shorter expected schedule (:mod:`repro.sched.loops`);
* runs of adjacent independent loops — concurrent phase kernels when
  they beat back-to-back execution (:mod:`repro.sched.concurrent`).

This provides the paper's scheduler interface (their reference [13],
Wavesched): loop unrolling, functional pipelining across ``if``
constructs, and concurrent loop optimization, all behind one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..cdfg.analysis import GuardAnalysis
from ..cdfg.regions import (Behavior, BlockRegion, LoopRegion, Region,
                            SeqRegion)
from ..errors import ScheduleError
from ..hw import Allocation, Library
from ..stg.markov import average_schedule_length, throughput
from ..stg.model import Stg
from .branching import ScheduleContext, block_fragment
from .concurrent import concurrent_fragment, independent
from .fragments import Frag, compose, connect, single_entry
from .loops import loop_fragment
from .types import BranchProbs, ResourceModel, SchedConfig


@dataclass
class ScheduleResult:
    """A scheduled behavior: the STG plus the inputs that produced it."""

    stg: Stg
    behavior: Behavior
    library: Library
    allocation: Allocation
    config: SchedConfig
    branch_probs: Optional[BranchProbs] = None

    def average_length(self) -> float:
        """Expected cycles per execution (paper's average schedule
        length)."""
        return average_schedule_length(self.stg)

    def throughput(self) -> float:
        """Executions per cycle."""
        return throughput(self.stg)

    def n_states(self) -> int:
        return len(self.stg)


class Scheduler:
    """Schedules a behavior under a library / allocation / clock."""

    def __init__(self, behavior: Behavior, library: Library,
                 allocation: Allocation,
                 config: Optional[SchedConfig] = None,
                 branch_probs: Optional[BranchProbs] = None) -> None:
        self.behavior = behavior
        self.library = library
        self.allocation = allocation
        self.config = config or SchedConfig()
        self.branch_probs = branch_probs

    def schedule(self) -> ScheduleResult:
        """Produce the STG.

        Raises:
            ScheduleError: if the allocation cannot implement some
                operation at all.
        """
        behavior = self.behavior
        stg = Stg(behavior.name)
        rm = ResourceModel(
            behavior.graph, self.library, self.allocation,
            array_ports={name: decl.ports
                         for name, decl in behavior.arrays.items()})
        ctx = ScheduleContext(
            behavior=behavior, graph=behavior.graph, rm=rm,
            config=self.config, probs=self.branch_probs, stg=stg,
            guards=GuardAnalysis(behavior.graph))
        frag = self._region(ctx, behavior.region)
        exit_sid = stg.add_state(label="done")
        if frag.is_empty:
            entry_sid = stg.add_state(label="entry")
            stg.add_transition(entry_sid, exit_sid, 1.0)
        else:
            connect(stg, frag.exits, [(exit_sid, 1.0, "")])
            entry_sid = single_entry(stg, frag, label="entry")
        stg.entry, stg.exit = entry_sid, exit_sid
        stg.validate()
        return ScheduleResult(stg, behavior, self.library, self.allocation,
                              self.config, self.branch_probs)

    # ------------------------------------------------------------------
    def _region(self, ctx: ScheduleContext, region: Region) -> Frag:
        if isinstance(region, BlockRegion):
            return block_fragment(ctx, region.nodes)
        if isinstance(region, LoopRegion):
            return loop_fragment(ctx, region, self._region)
        if isinstance(region, SeqRegion):
            return self._sequence(ctx, region.children)
        raise ScheduleError(f"unknown region {type(region).__name__}")

    def _sequence(self, ctx: ScheduleContext,
                  children: List[Region]) -> Frag:
        frags: List[Frag] = []
        i = 0
        while i < len(children):
            child = children[i]
            run = self._independent_loop_run(ctx, children, i)
            if len(run) >= 2:
                frag = self._best_loop_composition(ctx, run)
                frags.append(frag)
                i += len(run)
                continue
            frags.append(self._region(ctx, child))
            i += 1
        return compose(ctx.stg, frags)

    def _independent_loop_run(self, ctx: ScheduleContext,
                              children: List[Region],
                              start: int) -> List[LoopRegion]:
        """Maximal run of pairwise-independent adjacent loops."""
        if not ctx.config.allow_concurrent_loops:
            return []
        run: List[LoopRegion] = []
        for child in children[start:]:
            if not isinstance(child, LoopRegion):
                break
            if any(not independent(ctx, child, other) for other in run):
                break
            run.append(child)
        return run

    def _best_loop_composition(self, ctx: ScheduleContext,
                               run: List[LoopRegion]) -> Frag:
        """Concurrent phases vs back-to-back loops: keep the shorter."""
        conc_len = self._measure(
            ctx, lambda c: concurrent_fragment(c, run))
        seq_len = self._measure(
            ctx, lambda c: compose(
                c.stg, [loop_fragment(c, lp, self._region) for lp in run]))
        if conc_len is not None and (seq_len is None
                                     or conc_len < seq_len):
            frag = concurrent_fragment(ctx, run)
            assert frag is not None
            return frag
        return compose(
            ctx.stg,
            [loop_fragment(ctx, lp, self._region) for lp in run])

    @staticmethod
    def _measure(ctx: ScheduleContext,
                 build: Callable[[ScheduleContext], Optional[Frag]]
                 ) -> Optional[float]:
        """Expected cycles of a fragment built into a scratch STG."""
        scratch = Stg("scratch")
        sub = ctx.with_stg(scratch)
        try:
            frag = build(sub)
        except ScheduleError:
            return None
        if frag is None:
            return None
        entry = scratch.add_state(label="in")
        exit_ = scratch.add_state(label="out")
        if frag.is_empty:
            scratch.add_transition(entry, exit_, 1.0)
        else:
            connect(scratch, [(entry, 1.0, "")], frag.entries)
            connect(scratch, frag.exits, [(exit_, 1.0, "")])
        scratch.entry, scratch.exit = entry, exit_
        return average_schedule_length(scratch)


def schedule_behavior(behavior: Behavior, library: Library,
                      allocation: Allocation,
                      config: Optional[SchedConfig] = None,
                      branch_probs: Optional[BranchProbs] = None
                      ) -> ScheduleResult:
    """Convenience wrapper around :class:`Scheduler`."""
    return Scheduler(behavior, library, allocation, config,
                     branch_probs).schedule()

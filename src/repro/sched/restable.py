"""Reservation tables for resource-constrained scheduling.

Two flavors:

* :class:`LinearTable` — cycle-indexed, for acyclic (block) scheduling;
* :class:`ModuloTable` — indexed by ``cycle mod II``, for software
  pipelining (the paper's implicit loop unrolling).

Both support *guarded sharing*: two operations whose guards are mutually
exclusive may occupy the same functional-unit instance in the same cycle
(paper Section 1: functional pipelining "even across if constructs").
A sharing predicate is injected so the tables stay independent of the
guard analysis.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Callable, Dict, List, Optional

#: Predicate deciding whether two ops may share one FU instance.
SharePredicate = Callable[[int, int], bool]


class _InstanceTable:
    """Common logic: per-slot list of instances, each holding op groups."""

    def __init__(self, capacity_of: Callable[[str], int],
                 share: Optional[SharePredicate] = None) -> None:
        self._capacity_of = capacity_of
        self._share = share
        # (slot, resource) -> list of instances; an instance is a list of
        # node ids that pairwise may share it.
        self._table: Dict[tuple, List[List[int]]] = {}

    def _fits_instance(self, instance: List[int], nid: int) -> bool:
        if self._share is None:
            return False
        return all(self._share(nid, other) for other in instance)

    def _can_place_slot(self, slot: tuple, resource: str, nid: int) -> bool:
        instances = self._table.get((slot, resource), [])
        if any(self._fits_instance(inst, nid) for inst in instances):
            return True
        return len(instances) < self._capacity_of(resource)

    def _place_slot(self, slot: tuple, resource: str, nid: int) -> None:
        instances = self._table.setdefault((slot, resource), [])
        for inst in instances:
            if self._fits_instance(inst, nid):
                inst.append(nid)
                return
        if len(instances) >= self._capacity_of(resource):
            raise RuntimeError(
                f"resource {resource} over-subscribed at slot {slot}")
        instances.append([nid])

    def usage(self, slot: tuple, resource: str) -> int:
        """Instances in use for ``resource`` at ``slot``."""
        return len(self._table.get((slot, resource), []))


class LinearTable(_InstanceTable):
    """Cycle-indexed reservation table.

    Keeps a per-resource sorted free-list (strictly: a sorted list of
    *saturated* cycles — cycles where every instance is taken) so the
    list scheduler can skip over fully booked stretches instead of
    probing them cycle by cycle.  With a sharing predicate installed a
    saturated cycle may still admit a compatible op, so the skip is
    only taken for plain (unshared) tables; placement results are
    identical either way.
    """

    def __init__(self, capacity_of: Callable[[str], int],
                 share: Optional[SharePredicate] = None) -> None:
        super().__init__(capacity_of, share)
        # resource -> sorted cycles at which every instance is in use
        self._saturated: Dict[str, List[int]] = {}

    def can_place(self, cycle: int, n_cycles: int, resource: str,
                  nid: int) -> bool:
        """True if ``nid`` can occupy ``resource`` for ``n_cycles``
        starting at ``cycle``."""
        return all(self._can_place_slot((c,), resource, nid)
                   for c in range(cycle, cycle + max(n_cycles, 1)))

    def place(self, cycle: int, n_cycles: int, resource: str,
              nid: int) -> None:
        """Reserve the resource (call only after ``can_place``)."""
        for c in range(cycle, cycle + max(n_cycles, 1)):
            self._place_slot((c,), resource, nid)
            instances = self._table[((c,), resource)]
            if (len(instances) >= self._capacity_of(resource)
                    and self._share is None):
                full = self._saturated.setdefault(resource, [])
                i = bisect_left(full, c)
                if i >= len(full) or full[i] != c:
                    insort(full, c)

    def next_free_cycle(self, cycle: int, resource: str) -> int:
        """Smallest cycle ``>= cycle`` whose slot is not saturated.

        Used by the scheduler's placement scan to jump over fully
        booked cycles in one step.  With a sharing predicate the
        saturation test is not definitive (a compatible op may still
        fit), so the scan falls back to advancing one cycle at a time.
        """
        if self._share is not None:
            return cycle
        full = self._saturated.get(resource)
        if not full:
            return cycle
        i = bisect_left(full, cycle)
        while i < len(full) and full[i] == cycle:
            cycle += 1
            i += 1
        return cycle


class ModuloTable(_InstanceTable):
    """Reservation table indexed modulo the initiation interval."""

    def __init__(self, ii: int, capacity_of: Callable[[str], int],
                 share: Optional[SharePredicate] = None) -> None:
        super().__init__(capacity_of, share)
        if ii < 1:
            raise ValueError(f"initiation interval must be >= 1, got {ii}")
        self.ii = ii

    def can_place(self, cycle: int, n_cycles: int, resource: str,
                  nid: int) -> bool:
        """True if the op fits at ``cycle`` in the modulo table."""
        if n_cycles > self.ii:
            # An op occupying more cycles than the II would collide with
            # its own next instance.
            return False
        return all(self._can_place_slot((c % self.ii,), resource, nid)
                   for c in range(cycle, cycle + max(n_cycles, 1)))

    def place(self, cycle: int, n_cycles: int, resource: str,
              nid: int) -> None:
        for c in range(cycle, cycle + max(n_cycles, 1)):
            self._place_slot((c % self.ii,), resource, nid)

"""High-level power estimation and supply-voltage scaling."""

from .model import DEFAULT_REG_ACCESSES_PER_OP, PowerEstimate, estimate_power
from .report import format_power_estimate
from .vdd import delay_factor, scaled_vdd_for_schedule, slowdown, solve_vdd

__all__ = [
    "DEFAULT_REG_ACCESSES_PER_OP", "PowerEstimate", "delay_factor",
    "estimate_power", "format_power_estimate", "scaled_vdd_for_schedule",
    "slowdown", "solve_vdd",
]

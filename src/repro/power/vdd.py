"""Supply-voltage scaling (paper Section 2.2, Example 1).

Power optimization trades the throughput gained by transformations for
quadratic energy savings: the supply voltage is lowered until the
transformed design's average schedule length (which stretches as gates
slow down) matches the untransformed baseline.

First-order delay model (paper footnote 1, Weste & Eshraghian):
``delay = k × Vdd / (Vdd − Vt)²``.
"""

from __future__ import annotations

from ..errors import PowerError


def delay_factor(vdd: float, vt: float = 1.0) -> float:
    """The Vdd-dependent part of gate delay: ``Vdd / (Vdd − Vt)²``."""
    if vdd <= vt:
        raise PowerError(f"Vdd {vdd} must exceed Vt {vt}")
    return vdd / (vdd - vt) ** 2


def slowdown(vdd_new: float, vdd_initial: float = 5.0,
             vt: float = 1.0) -> float:
    """Delay multiplier when moving from ``vdd_initial`` to ``vdd_new``."""
    return delay_factor(vdd_new, vt) / delay_factor(vdd_initial, vt)


def solve_vdd(target_slowdown: float, vdd_initial: float = 5.0,
              vt: float = 1.0, tol: float = 1e-9) -> float:
    """The supply voltage at which delays stretch by ``target_slowdown``.

    Solves ``slowdown(v) = target_slowdown`` for ``v`` by bisection
    (the slowdown is strictly decreasing in ``v`` above ``2·Vt``, where
    designs operate).

    Args:
        target_slowdown: desired delay multiplier, ≥ 1.  A slowdown of
            exactly 1.0 returns ``vdd_initial``; a slowdown larger than
            the ``2·Vt`` floor can realize returns that floor (the
            model's validity edge).

    Raises:
        PowerError: for a speed-up request (slowdown < 1) or a
            non-finite target — scaling *up* past the nominal supply is
            out of the model's scope.
    """
    if not (target_slowdown >= 1.0 - 1e-9):  # also catches NaN
        raise PowerError(
            f"cannot scale Vdd for a speed-up (slowdown "
            f"{target_slowdown:.4f} < 1)")
    if target_slowdown == float("inf"):
        raise PowerError("target slowdown must be finite")
    if target_slowdown <= 1.0 + 1e-12:
        return vdd_initial
    lo = max(2.0 * vt, vt + 1e-6)  # stay on the monotonic branch
    hi = vdd_initial
    if slowdown(lo, vdd_initial, vt) < target_slowdown:
        # Even the minimum usable supply is too fast to slow down this
        # much; return the floor (the model's validity edge).
        return lo
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if slowdown(mid, vdd_initial, vt) > target_slowdown:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)


def scaled_vdd_for_schedule(new_length: float, baseline_length: float,
                            vdd_initial: float = 5.0,
                            vt: float = 1.0) -> float:
    """Example 1's scaling rule.

    A transformed design finishing in ``new_length`` cycles (at the
    nominal supply) may be slowed by ``baseline_length / new_length``
    before it loses to the untransformed baseline; return the supply
    voltage realizing exactly that slowdown.
    """
    if new_length <= 0 or baseline_length <= 0:
        raise PowerError("schedule lengths must be positive")
    if new_length >= baseline_length:
        return vdd_initial  # no slack to trade
    return solve_vdd(baseline_length / new_length, vdd_initial, vt)

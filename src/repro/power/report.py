"""Human-readable power reports."""

from __future__ import annotations

from typing import List, Optional

from .model import PowerEstimate


def format_power_estimate(est: PowerEstimate,
                          title: Optional[str] = None) -> str:
    """Render a :class:`PowerEstimate` as an aligned text breakdown.

    Energies are per execution, in the paper's Vdd²-normalized units;
    the final line applies ``Vdd²`` and the schedule length.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'component':<14} {'ops':>10} {'energy':>10}")
    for fu in sorted(est.fu_energy):
        lines.append(f"{fu:<14} {est.fu_ops.get(fu, 0.0):>10.2f} "
                     f"{est.fu_energy[fu]:>10.2f}")
    lines.append(f"{'registers':<14} {'':>10} "
                 f"{est.register_energy:>10.2f}")
    lines.append(f"{'memory':<14} {'':>10} {est.memory_energy:>10.2f}")
    lines.append(f"{'overhead':<14} {'':>10} "
                 f"{est.overhead_energy:>10.2f}")
    lines.append(f"{'total':<14} {'':>10} {est.total_energy:>10.2f}")
    lines.append(
        f"schedule {est.schedule_length:.2f} cycles @ Vdd {est.vdd:.2f} V"
        f" -> power {est.power:.2f} / cycle_time")
    return "\n".join(lines)

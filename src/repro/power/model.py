"""High-level power estimation (paper Section 2.2).

Average power = average energy per execution / average schedule length.
Energy per execution sums, over every STG state weighted by its expected
visits:

* functional-unit operations — ``C_type × Vdd²`` each (Table 1);
* memory accesses (loads/stores);
* register accesses — modelled as ``reg_accesses_per_op`` register
  read/writes per datapath operation (1.25, calibrated so Example 1's
  register energy of 99.38 Vdd² is reproduced; see DESIGN.md);
* interconnect + controller — ``overhead_factor`` of the datapath
  energy (0.51, calibrated from Example 1's total of 665.58 Vdd²).

All energies are reported in the paper's normalized "Vdd² units":
multiply by ``vdd²`` to weight, divide by ``cycle_time`` for absolute
power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cdfg.ir import Graph
from ..cdfg.ops import OpKind
from ..errors import PowerError
from ..hw import Library
from ..numeric import get_backend
from ..stg.markov import expected_visits
from ..stg.model import Stg

#: Calibrated register accesses per datapath operation (Example 1).
DEFAULT_REG_ACCESSES_PER_OP = 1.25


@dataclass
class PowerEstimate:
    """Breakdown of a power estimate.

    Energies are per execution of the behavior, in Vdd²-normalized
    units (the paper's convention).
    """

    fu_energy: Dict[str, float] = field(default_factory=dict)
    fu_ops: Dict[str, float] = field(default_factory=dict)
    register_energy: float = 0.0
    memory_energy: float = 0.0
    overhead_energy: float = 0.0
    schedule_length: float = 0.0
    vdd: float = 5.0
    cycle_time: float = 1.0

    @property
    def datapath_energy(self) -> float:
        """FU + register + memory energy (before overhead)."""
        return (sum(self.fu_energy.values()) + self.register_energy
                + self.memory_energy)

    @property
    def total_energy(self) -> float:
        """Total per-execution energy in Vdd² units."""
        return self.datapath_energy + self.overhead_energy

    @property
    def power(self) -> float:
        """Average power: ``E × Vdd² / (length × cycle_time)``."""
        if self.schedule_length <= 0:
            raise PowerError("non-positive schedule length")
        return (self.total_energy * self.vdd ** 2
                / (self.schedule_length * self.cycle_time))


def estimate_power(stg: Stg, graph: Graph, library: Library, *,
                   vdd: float = 5.0, cycle_time: float = 1.0,
                   reg_accesses_per_op: float = DEFAULT_REG_ACCESSES_PER_OP,
                   visits: Optional[Dict[int, float]] = None
                   ) -> PowerEstimate:
    """Estimate average power of a scheduled design.

    Args:
        stg: the schedule (states annotated with executed operations).
        graph: the CDFG the state op-lists refer to.
        library: component characterizations (energy constants).
        vdd: supply voltage in volts.
        cycle_time: clock period (any unit; power is reported per this
            unit).
        reg_accesses_per_op: register-access model parameter.
        visits: precomputed expected state visits (else computed here).
    """
    if visits is None:
        visits = expected_visits(stg)
    est = PowerEstimate(vdd=vdd, cycle_time=cycle_time)
    est.schedule_length = float(sum(visits.values()))
    if get_backend().batched:
        # Grouped cumsum accumulation — bit-identical to the scalar
        # loop below (see repro.numeric.power for the ordering
        # argument).
        from ..numeric.power import accumulate_activity
        fu_ops, fu_energy, mem_accesses, total_ops = \
            accumulate_activity(stg, graph, library, visits)
        est.fu_ops.update(fu_ops)
        est.fu_energy.update(fu_energy)
    else:
        mem_accesses = 0.0
        total_ops = 0.0
        for sid, state in stg.states.items():
            weight = visits.get(sid, 0.0)
            if weight <= 0:
                continue
            for op in state.ops:
                count = weight * op.exec_prob
                node = graph.nodes.get(op.node)
                if node is None:
                    raise PowerError(
                        f"state {sid} references unknown CDFG node "
                        f"{op.node}")
                if node.kind in (OpKind.LOAD, OpKind.STORE):
                    mem_accesses += count
                    total_ops += count
                    continue
                fu = library.fu_for(node.kind)
                if fu is None:
                    continue  # wiring (joins, const shifts) costs nothing
                est.fu_ops[fu.name] = est.fu_ops.get(fu.name, 0.0) + count
                est.fu_energy[fu.name] = (est.fu_energy.get(fu.name, 0.0)
                                          + count * fu.energy)
                total_ops += count
    est.memory_energy = mem_accesses * library.memory.energy
    est.register_energy = (total_ops * reg_accesses_per_op
                           * library.register.energy)
    est.overhead_energy = library.overhead_factor * est.datapath_energy
    return est

"""Abstract syntax tree for BDL.

Plain dataclasses; every node carries its source position for
diagnostics.  :func:`assigned_vars` and :func:`used_vars` provide the
simple dataflow facts the lowering pass needs for loop-carried variable
detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""

    line: int = 0
    column: int = 0


@dataclass
class IntLit(Expr):
    """Integer literal."""

    value: int = 0


@dataclass
class VarRef(Expr):
    """Scalar variable reference."""

    name: str = ""


@dataclass
class ArrayRef(Expr):
    """Array element read ``name[index]``."""

    name: str = ""
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    """Unary operation: ``-``, ``!``, ``~``."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    """Binary operation with a C-style operator string."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements."""

    line: int = 0
    column: int = 0


@dataclass
class VarDecl(Stmt):
    """``var x = e;`` (``e`` defaults to 0)."""

    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``x = e;``"""

    name: str = ""
    value: Optional[Expr] = None


@dataclass
class ArrayAssign(Stmt):
    """``x[i] = e;``"""

    name: str = ""
    index: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class If(Stmt):
    """``if (cond) { ... } else { ... }``"""

    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    """``while (cond) { ... }``"""

    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)
    label: str = ""


@dataclass
class For(Stmt):
    """``for (x = e0; cond; x = e1) { ... }``"""

    var: str = ""
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    update: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)
    label: str = ""


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """Procedure parameter: ``in x``, ``out y``, or ``array a[N]``."""

    direction: str  # "in" | "out" | "array"
    name: str
    size: int = 0  # arrays only
    line: int = 0
    column: int = 0


@dataclass
class Proc:
    """A complete BDL procedure."""

    name: str
    params: List[Param]
    body: List[Stmt]
    line: int = 0
    column: int = 0


# ---------------------------------------------------------------------------
# Dataflow facts
# ---------------------------------------------------------------------------

def assigned_vars(stmts: List[Stmt]) -> Set[str]:
    """Scalar variables assigned anywhere in ``stmts`` (recursively)."""
    out: Set[str] = set()
    for s in stmts:
        if isinstance(s, (VarDecl, Assign)):
            out.add(s.name)
        elif isinstance(s, If):
            out |= assigned_vars(s.then_body)
            out |= assigned_vars(s.else_body)
        elif isinstance(s, While):
            out |= assigned_vars(s.body)
        elif isinstance(s, For):
            out.add(s.var)
            out |= assigned_vars(s.body)
    return out


def used_vars(node: Union[Expr, Stmt, List[Stmt], None]) -> Set[str]:
    """Scalar variables read anywhere in an expression/statement tree."""
    out: Set[str] = set()
    if node is None:
        return out
    if isinstance(node, list):
        for item in node:
            out |= used_vars(item)
        return out
    if isinstance(node, VarRef):
        out.add(node.name)
    elif isinstance(node, ArrayRef):
        out |= used_vars(node.index)
    elif isinstance(node, Unary):
        out |= used_vars(node.operand)
    elif isinstance(node, Binary):
        out |= used_vars(node.left)
        out |= used_vars(node.right)
    elif isinstance(node, VarDecl):
        out |= used_vars(node.init)
    elif isinstance(node, Assign):
        out |= used_vars(node.value)
    elif isinstance(node, ArrayAssign):
        out |= used_vars(node.index)
        out |= used_vars(node.value)
    elif isinstance(node, If):
        out |= used_vars(node.cond)
        out |= used_vars(node.then_body)
        out |= used_vars(node.else_body)
    elif isinstance(node, While):
        out |= used_vars(node.cond)
        out |= used_vars(node.body)
    elif isinstance(node, For):
        out |= used_vars(node.init)
        out |= used_vars(node.cond)
        out |= used_vars(node.update)
        out |= used_vars(node.body)
    return out

"""Recursive-descent parser for BDL.

Grammar (C-like, expression precedence matches C)::

    proc      := 'proc' IDENT '(' [param {',' param}] ')' block
    param     := 'in' IDENT | 'out' IDENT | 'array' IDENT '[' INT ']'
    block     := '{' {stmt} '}'
    stmt      := 'var' IDENT ['=' expr] ';'
               | IDENT '=' expr ';'
               | IDENT '[' expr ']' '=' expr ';'
               | 'if' '(' expr ')' block ['else' (block | if_stmt)]
               | 'while' '(' expr ')' block
               | 'for' '(' IDENT '=' expr ';' expr ';' IDENT '=' expr ')'
                 block
               | ';'
    expr      := C-precedence binary/unary expression over
                 INT, IDENT, IDENT '[' expr ']', '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from .astnodes import (ArrayAssign, ArrayRef, Assign, Binary, Expr, For, If,
                       IntLit, Param, Proc, Stmt, Unary, VarDecl, VarRef,
                       While)
from .lexer import TokKind, Token, tokenize

#: Nesting caps: recursive descent must fail as a ParseError, never as
#: a Python RecursionError, on adversarially deep input.  The caps are
#: far above anything a real behavioral description nests (and what the
#: fuzz generator emits), but low enough that the parser's deepest
#: recursion — statements plus the full expression precedence ladder —
#: stays well inside the interpreter's default stack budget.
MAX_STMT_NEST = 50
MAX_EXPR_NEST = 32

#: Binary operator precedence levels, loosest first (C order).
_PRECEDENCE: List[List[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Parses a token stream into a :class:`Proc` AST."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._loop_counter = 0
        self._stmt_depth = 0
        self._expr_depth = 0

    # -- token plumbing -------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokKind.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self._cur
        return ParseError(f"{message} (found {tok.text!r})",
                          tok.line, tok.column)

    def _expect(self, text: str) -> Token:
        tok = self._cur
        if tok.text != text or tok.kind is TokKind.EOF:
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._cur
        if tok.kind is not TokKind.IDENT:
            raise self._error("expected identifier")
        return self._advance()

    def _accept(self, text: str) -> bool:
        if self._cur.text == text and self._cur.kind is not TokKind.EOF:
            self._advance()
            return True
        return False

    # -- grammar --------------------------------------------------------
    def parse_proc(self) -> Proc:
        """Parse a complete procedure and require EOF afterwards."""
        start = self._expect("proc")
        name = self._expect_ident().text
        self._expect("(")
        params: List[Param] = []
        if self._cur.text != ")":
            params.append(self._parse_param())
            while self._accept(","):
                params.append(self._parse_param())
        self._expect(")")
        body = self._parse_block()
        if self._cur.kind is not TokKind.EOF:
            raise self._error("trailing input after procedure")
        return Proc(name, params, body, line=start.line, column=start.column)

    def _parse_param(self) -> Param:
        tok = self._cur
        if self._accept("in"):
            name = self._expect_ident().text
            return Param("in", name, line=tok.line, column=tok.column)
        if self._accept("out"):
            name = self._expect_ident().text
            return Param("out", name, line=tok.line, column=tok.column)
        if self._accept("array"):
            name = self._expect_ident().text
            self._expect("[")
            size_tok = self._cur
            if size_tok.kind is not TokKind.INT:
                raise self._error("expected array size")
            self._advance()
            self._expect("]")
            return Param("array", name, size=int(size_tok.text),
                         line=tok.line, column=tok.column)
        raise self._error("expected 'in', 'out' or 'array'")

    def _parse_block(self) -> List[Stmt]:
        self._expect("{")
        stmts: List[Stmt] = []
        while not self._accept("}"):
            if self._cur.kind is TokKind.EOF:
                raise self._error("unexpected end of input in block")
            stmt = self._parse_stmt()
            if stmt is not None:
                stmts.append(stmt)
        return stmts

    def _parse_stmt(self) -> Optional[Stmt]:
        self._stmt_depth += 1
        if self._stmt_depth > MAX_STMT_NEST:
            raise self._error(
                f"statements nested deeper than {MAX_STMT_NEST} levels")
        try:
            return self._parse_stmt_inner()
        finally:
            self._stmt_depth -= 1

    def _parse_stmt_inner(self) -> Optional[Stmt]:
        tok = self._cur
        if self._accept(";"):
            return None
        if self._accept("var"):
            name = self._expect_ident().text
            init: Optional[Expr] = None
            if self._accept("="):
                init = self._parse_expr()
            self._expect(";")
            return VarDecl(name=name, init=init, line=tok.line,
                           column=tok.column)
        if self._cur.text == "if":
            return self._parse_if()
        if self._cur.text == "while":
            return self._parse_while()
        if self._cur.text == "for":
            return self._parse_for()
        if self._cur.kind is TokKind.IDENT:
            name = self._advance().text
            if self._accept("["):
                index = self._parse_expr()
                self._expect("]")
                self._expect("=")
                value = self._parse_expr()
                self._expect(";")
                return ArrayAssign(name=name, index=index, value=value,
                                   line=tok.line, column=tok.column)
            self._expect("=")
            value = self._parse_expr()
            self._expect(";")
            return Assign(name=name, value=value, line=tok.line,
                          column=tok.column)
        raise self._error("expected statement")

    def _parse_if(self) -> If:
        tok = self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then_body = self._parse_block()
        else_body: List[Stmt] = []
        if self._accept("else"):
            if self._cur.text == "if":
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return If(cond=cond, then_body=then_body, else_body=else_body,
                  line=tok.line, column=tok.column)

    def _parse_while(self) -> While:
        tok = self._expect("while")
        self._loop_counter += 1
        label = f"L{self._loop_counter}"  # pre-order: outer loops first
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._parse_block()
        return While(cond=cond, body=body, label=label,
                     line=tok.line, column=tok.column)

    def _parse_for(self) -> For:
        tok = self._expect("for")
        self._expect("(")
        var = self._expect_ident().text
        self._expect("=")
        init = self._parse_expr()
        self._expect(";")
        cond = self._parse_expr()
        self._expect(";")
        update_var = self._expect_ident().text
        if update_var != var:
            raise ParseError(
                f"for-loop update must assign {var!r}, not {update_var!r}",
                tok.line, tok.column)
        self._expect("=")
        update = self._parse_expr()
        self._expect(")")
        self._loop_counter += 1
        label = f"L{self._loop_counter}"
        body = self._parse_block()
        return For(var=var, init=init, cond=cond, update=update, body=body,
                   label=label, line=tok.line, column=tok.column)

    # -- expressions ----------------------------------------------------
    def _parse_expr(self) -> Expr:
        self._expr_depth += 1
        if self._expr_depth > MAX_EXPR_NEST:
            raise self._error(
                f"expressions nested deeper than {MAX_EXPR_NEST} "
                f"levels")
        try:
            return self._parse_binary(0)
        finally:
            self._expr_depth -= 1

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        expr = self._parse_binary(level + 1)
        ops = _PRECEDENCE[level]
        while self._cur.kind is TokKind.OP and self._cur.text in ops:
            tok = self._advance()
            right = self._parse_binary(level + 1)
            expr = Binary(op=tok.text, left=expr, right=right,
                          line=tok.line, column=tok.column)
        return expr

    def _parse_unary(self) -> Expr:
        tok = self._cur
        if tok.kind is TokKind.OP and tok.text in ("-", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return Unary(op=tok.text, operand=operand,
                         line=tok.line, column=tok.column)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self._cur
        if tok.kind is TokKind.INT:
            self._advance()
            return IntLit(value=int(tok.text), line=tok.line,
                          column=tok.column)
        if tok.kind is TokKind.IDENT:
            self._advance()
            if self._accept("["):
                index = self._parse_expr()
                self._expect("]")
                return ArrayRef(name=tok.text, index=index,
                                line=tok.line, column=tok.column)
            return VarRef(name=tok.text, line=tok.line, column=tok.column)
        if self._accept("("):
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise self._error("expected expression")


def parse(source: str) -> Proc:
    """Parse BDL source text into a :class:`Proc` AST."""
    return Parser(tokenize(source)).parse_proc()

"""Lowering: BDL AST → :class:`~repro.cdfg.regions.Behavior`.

The pass is a thin layer over :class:`~repro.cdfg.builder.BehaviorBuilder`:

* ``if`` statements are if-converted (guards + JOIN merges);
* loops become :class:`~repro.cdfg.regions.LoopRegion`; the loop-carried
  variable set is computed as *assigned inside the loop ∩ defined before
  it* — a variable first defined inside the loop is a per-iteration
  temporary and needs no header join;
* ``x + 1`` / ``x - 1`` are peephole-lowered to ``INC`` / ``DEC`` so
  they can map onto the paper's incrementer functional units (Fig. 1's
  ``++`` annotation);
* ``for`` loops with constant bounds record their trip count on the
  loop region, which the scheduler's concurrent-loop optimizer uses.
"""

from __future__ import annotations

from typing import List, Optional

from ..cdfg.builder import BehaviorBuilder
from ..cdfg.regions import Behavior
from ..errors import CdfgError, SemanticError
from .astnodes import (ArrayAssign, ArrayRef, Assign, Binary, Expr, For, If,
                       IntLit, Proc, Stmt, Unary, VarDecl, VarRef, While,
                       assigned_vars)
from .parser import parse

_BINARY_KINDS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "<<": "shl", ">>": "shr",
    "<": "lt", ">": "gt", "<=": "le", ">=": "ge", "==": "eq", "!=": "ne",
    "&&": "land", "||": "lor",
}

_BITWISE = {"&": "BAND", "|": "BOR", "^": "BXOR"}

#: The parser caps *paren* nesting, but an unparenthesized operator
#: chain (``a+a+...+a``) still builds an arbitrarily deep left-leaning
#: AST without parser recursion; lowering walks that tree recursively,
#: so it needs its own cap to fail as a SemanticError rather than a
#: Python RecursionError.
MAX_EXPR_DEPTH = 300


class Lowerer:
    """Lowers a parsed :class:`Proc` into a behavior."""

    def __init__(self, proc: Proc) -> None:
        self.proc = proc
        self.builder = BehaviorBuilder(proc.name)
        self._expr_depth = 0

    def lower(self) -> Behavior:
        """Run the lowering and return a validated behavior."""
        b = self.builder
        out_params: List[str] = []
        seen: set = set()
        for p in self.proc.params:
            if p.name in seen:
                raise SemanticError(
                    f"{p.line}:{p.column}: duplicate parameter "
                    f"{p.name!r}")
            seen.add(p.name)
            if p.direction == "in":
                b.input(p.name)
            elif p.direction == "out":
                out_params.append(p.name)
            else:
                b.array(p.name, p.size)
        self._lower_stmts(self.proc.body)
        for name in out_params:
            if not b.has_var(name):
                raise SemanticError(
                    f"output parameter {name!r} is never assigned")
            b.output(name)
        try:
            return b.finish()
        except CdfgError as exc:
            raise SemanticError(str(exc)) from exc

    # ------------------------------------------------------------------
    def _lower_stmts(self, stmts: List[Stmt]) -> None:
        for stmt in stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: Stmt) -> None:
        b = self.builder
        try:
            if isinstance(stmt, VarDecl):
                src = self._expr(stmt.init) if stmt.init is not None \
                    else b.const(0)
                b.assign(stmt.name, src)
            elif isinstance(stmt, Assign):
                b.assign(stmt.name, self._expr(stmt.value))
            elif isinstance(stmt, ArrayAssign):
                b.store(stmt.name, self._expr(stmt.index),
                        self._expr(stmt.value))
            elif isinstance(stmt, If):
                self._lower_if(stmt)
            elif isinstance(stmt, While):
                self._lower_while(stmt)
            elif isinstance(stmt, For):
                self._lower_for(stmt)
            else:
                raise SemanticError(
                    f"unsupported statement {type(stmt).__name__}")
        except CdfgError as exc:
            raise SemanticError(
                f"{stmt.line}:{stmt.column}: {exc}") from exc

    def _lower_if(self, stmt: If) -> None:
        b = self.builder
        cond = self._expr(stmt.cond)
        with b.if_(cond):
            self._lower_stmts(stmt.then_body)
            if stmt.else_body:
                b.otherwise()
                self._lower_stmts(stmt.else_body)

    def _carried(self, body: List[Stmt], extra: Optional[str] = None) -> List[str]:
        names = assigned_vars(body)
        if extra is not None:
            names = names | {extra}
        return sorted(n for n in names if self.builder.has_var(n))

    def _lower_while(self, stmt: While) -> None:
        b = self.builder
        with b.loop(stmt.label, carried=self._carried(stmt.body)):
            b.loop_cond(self._expr(stmt.cond))
            self._lower_stmts(stmt.body)

    def _lower_for(self, stmt: For) -> None:
        b = self.builder
        b.assign(stmt.var, self._expr(stmt.init))
        carried = self._carried(stmt.body, extra=stmt.var)
        trip = _static_trip_count(stmt)
        with b.loop(stmt.label, carried=carried, trip_count=trip):
            b.loop_cond(self._expr(stmt.cond))
            self._lower_stmts(stmt.body)
            b.assign(stmt.var, self._expr(stmt.update))

    # ------------------------------------------------------------------
    def _expr(self, expr: Optional[Expr]) -> int:
        self._expr_depth += 1
        if self._expr_depth > MAX_EXPR_DEPTH:
            raise SemanticError(
                f"expression deeper than {MAX_EXPR_DEPTH} operations; "
                f"split it across assignments")
        try:
            return self._expr_inner(expr)
        finally:
            self._expr_depth -= 1

    def _expr_inner(self, expr: Optional[Expr]) -> int:
        b = self.builder
        if expr is None:
            raise SemanticError("missing expression")
        if isinstance(expr, IntLit):
            return b.const(expr.value)
        if isinstance(expr, VarRef):
            try:
                return b.var(expr.name)
            except CdfgError as exc:
                raise SemanticError(
                    f"{expr.line}:{expr.column}: {exc}") from exc
        if isinstance(expr, ArrayRef):
            return b.load(expr.name, self._expr(expr.index))
        if isinstance(expr, Unary):
            if expr.op == "-":
                if isinstance(expr.operand, IntLit):
                    return b.const(-expr.operand.value)
                return b.neg(self._expr(expr.operand))
            if expr.op == "!":
                return b.lnot(self._expr(expr.operand))
            if expr.op == "~":
                return b.bnot(self._expr(expr.operand))
            raise SemanticError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, Binary):
            return self._binary(expr)
        raise SemanticError(f"unsupported expression {type(expr).__name__}")

    def _binary(self, expr: Binary) -> int:
        b = self.builder
        # Peephole: x + 1 -> INC, x - 1 -> DEC (maps to incrementer FUs).
        if expr.op == "+":
            if isinstance(expr.right, IntLit) and expr.right.value == 1:
                return b.inc(self._expr(expr.left))
            if isinstance(expr.left, IntLit) and expr.left.value == 1:
                return b.inc(self._expr(expr.right))
        if expr.op == "-" and isinstance(expr.right, IntLit) \
                and expr.right.value == 1:
            return b.dec(self._expr(expr.left))
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        if expr.op in _BINARY_KINDS:
            return getattr(b, _BINARY_KINDS[expr.op])(left, right)
        if expr.op in _BITWISE:
            from ..cdfg.ops import OpKind
            return b.op(OpKind[_BITWISE[expr.op]], left, right)
        raise SemanticError(f"unknown binary operator {expr.op!r}")


def _static_trip_count(stmt: For) -> Optional[int]:
    """Trip count of ``for (v=c0; v<c1; v=v+c2)`` with constant bounds."""
    if not isinstance(stmt.init, IntLit) or not isinstance(stmt.cond, Binary):
        return None
    cond = stmt.cond
    if not (isinstance(cond.left, VarRef) and cond.left.name == stmt.var
            and isinstance(cond.right, IntLit)):
        return None
    upd = stmt.update
    if not (isinstance(upd, Binary) and upd.op in ("+", "-")
            and isinstance(upd.left, VarRef) and upd.left.name == stmt.var
            and isinstance(upd.right, IntLit)):
        return None
    start = stmt.init.value
    bound = cond.right.value
    step = upd.right.value if upd.op == "+" else -upd.right.value
    if step == 0:
        return None
    count = 0
    v = start
    for _ in range(10_000_000):
        if cond.op == "<" and not v < bound:
            break
        if cond.op == "<=" and not v <= bound:
            break
        if cond.op == ">" and not v > bound:
            break
        if cond.op == ">=" and not v >= bound:
            break
        if cond.op == "!=" and not v != bound:
            break
        if cond.op not in ("<", "<=", ">", ">=", "!="):
            return None
        count += 1
        v += step
    else:
        return None
    return count


def compile_source(source: str) -> Behavior:
    """Parse and lower BDL ``source`` into a validated behavior."""
    return Lowerer(parse(source)).lower()

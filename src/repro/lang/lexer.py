"""Lexer for BDL, the behavioral description language.

BDL is the small C-like language the paper's examples are written in
(Figure 1(a)).  The lexer produces a flat list of :class:`Token` with
line/column positions for error reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import LexError


class TokKind(enum.Enum):
    """Token categories."""

    IDENT = "ident"
    INT = "int"
    KEYWORD = "keyword"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset({
    "proc", "in", "out", "array", "var", "if", "else", "while", "for",
})

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
              "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|",
              "^")

_PUNCT = "(){}[],;"


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize BDL ``source``.

    Supports ``//`` line comments and ``/* */`` block comments.

    Raises:
        LexError: on an unrecognized character.
    """
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment",
                               start_line, start_col)
            advance(2)
            continue
        if ch.isdigit():
            start = i
            start_line, start_col = line, col
            while i < n and source[i].isdigit():
                advance(1)
            if i < n and (source[i].isalpha() or source[i] == "_"):
                raise LexError(f"bad numeric literal near "
                               f"{source[start:i + 1]!r}", line, col)
            tokens.append(Token(TokKind.INT, source[start:i],
                                start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokKind.OP, op, line, col))
                advance(len(op))
                break
        else:
            if ch in _PUNCT:
                tokens.append(Token(TokKind.PUNCT, ch, line, col))
                advance(1)
            else:
                raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokKind.EOF, "", line, col))
    return tokens

"""BDL — the behavioral description language frontend.

BDL is a small C-like language matching the paper's example syntax
(Figure 1(a)).  :func:`compile_source` goes from source text to a
validated :class:`~repro.cdfg.regions.Behavior`::

    from repro.lang import compile_source

    beh = compile_source('''
        proc gcd(in a, in b, out g) {
            while (a != b) {
                if (a < b) { b = b - a; } else { a = a - b; }
            }
            g = a;
        }
    ''')
"""

from .astnodes import (ArrayAssign, ArrayRef, Assign, Binary, Expr, For, If,
                       IntLit, Param, Proc, Stmt, Unary, VarDecl, VarRef,
                       While, assigned_vars, used_vars)
from .lexer import TokKind, Token, tokenize
from .lower import Lowerer, compile_source
from .parser import Parser, parse

__all__ = [
    "ArrayAssign", "ArrayRef", "Assign", "Binary", "Expr", "For", "If",
    "IntLit", "Lowerer", "Param", "Parser", "Proc", "Stmt", "TokKind",
    "Token", "Unary", "VarDecl", "VarRef", "While", "assigned_vars",
    "compile_source", "parse", "tokenize", "used_vars",
]

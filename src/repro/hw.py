"""Hardware component library and allocation model.

The paper characterizes functional units, registers and memories for
delay, area and energy (Table 1 for the TEST1 example, Section 5 for the
main experiments).  Both the scheduler (delays, allocation counts) and
the power model (energy constants) read from this shared model.

Energy constants are the paper's ``C_type`` in
``E = C_type × Vdd² × N_ops`` (Section 2.2).  The Section-5 library does
not publish energy constants; the values here are chosen to be
consistent with Table 1's ratios (multiplier ≈ 2× adder, incrementer
≈ 0.5× adder, ...) and are documented as a substitution in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional

from .cdfg.ops import OpKind
from .errors import AllocationError, PowerError

#: Pseudo FU-type prefix for per-array memories.  An array ``x`` occupies
#: resource ``mem:x``; its port count comes from the array declaration.
MEMORY_PREFIX = "mem:"


@dataclass(frozen=True)
class FuType:
    """A library component characterized for delay, energy and area.

    Delay is in nanoseconds; energy is the dimensionless ``C_type``
    constant of the paper's model (multiplied by ``Vdd²`` per operation);
    area is in normalized units.
    """

    name: str
    delay: float
    energy: float
    area: float


@dataclass
class Library:
    """A component library plus functional-unit selection.

    Attributes:
        name: library identifier.
        fu_types: component characterizations by name.
        selection: which FU type implements each operation kind.
        register: the register component (read/write energy, setup delay).
        memory: the memory component (access delay/energy for arrays).
        overhead_factor: interconnect + controller energy, as a fraction
            of datapath (FU + register + memory) energy.  Calibrated so
            Example 1's total (665.58 Vdd² from a 440.8 Vdd² datapath)
            is reproduced; see DESIGN.md.
    """

    name: str
    fu_types: Dict[str, FuType]
    selection: Dict[OpKind, str]
    register: FuType
    memory: FuType
    overhead_factor: float = 0.51

    def fu_for(self, kind: OpKind) -> Optional[FuType]:
        """The FU type implementing ``kind``; ``None`` if cost-free."""
        name = self.selection.get(kind)
        if name is None:
            return None
        try:
            return self.fu_types[name]
        except KeyError:
            raise PowerError(
                f"library {self.name}: selection maps {kind.value} to "
                f"unknown FU type {name!r}") from None

    def delay_of(self, kind: OpKind) -> float:
        """Propagation delay in ns of ``kind`` (0 for cost-free kinds)."""
        if kind in (OpKind.LOAD, OpKind.STORE):
            return self.memory.delay
        fu = self.fu_for(kind)
        return fu.delay if fu is not None else 0.0

    def scaled(self, vdd: float, vt: float = 1.0,
               vdd_nominal: float = 5.0) -> "Library":
        """A copy of the library with delays rescaled for supply ``vdd``.

        Uses the paper's first-order model
        ``delay = k × Vdd / (Vdd − Vt)²`` (Section 2.2, footnote 1).
        """
        if vdd <= vt:
            raise PowerError(f"Vdd {vdd} must exceed Vt {vt}")
        factor = ((vdd / (vdd - vt) ** 2)
                  / (vdd_nominal / (vdd_nominal - vt) ** 2))

        def scale(fu: FuType) -> FuType:
            return replace(fu, delay=fu.delay * factor)

        return Library(
            name=f"{self.name}@{vdd:.2f}V",
            fu_types={k: scale(v) for k, v in self.fu_types.items()},
            selection=dict(self.selection),
            register=scale(self.register),
            memory=scale(self.memory),
            overhead_factor=self.overhead_factor,
        )


@dataclass
class Allocation:
    """How many instances of each FU type the design may use.

    ``counts`` maps FU type name → instance count.  Memories are
    implicit: every declared array gets its own memory (paper: "arrays
    ... are assumed to be mapped to separate memories").
    """

    counts: Dict[str, int] = field(default_factory=dict)

    def count(self, fu_name: str) -> int:
        """Available instances of ``fu_name`` (0 if not allocated)."""
        return self.counts.get(fu_name, 0)

    def check_feasible(self, kinds: Iterable[OpKind],
                       library: Library) -> None:
        """Raise if some required FU type has a zero allocation."""
        for kind in set(kinds):
            fu = library.fu_for(kind)
            if fu is not None and self.count(fu.name) < 1:
                raise AllocationError(
                    f"operation {kind.value} needs FU {fu.name!r} but the "
                    f"allocation provides none")

    def copy(self) -> "Allocation":
        return Allocation(dict(self.counts))


# ---------------------------------------------------------------------------
# Paper libraries
# ---------------------------------------------------------------------------

def table1_library() -> Library:
    """The TEST1 / Example 1 library (paper Table 1).

    ``comp1`` implements the comparisons, ``cla1`` the additions,
    ``incr1`` the increment, ``w_mult1`` the multiply; ``reg1`` and
    ``mem1`` characterize storage.
    """
    fu_types = {
        "comp1": FuType("comp1", delay=12.0, energy=1.1, area=1.3),
        "cla1": FuType("cla1", delay=10.0, energy=1.3, area=1.5),
        "incr1": FuType("incr1", delay=13.0, energy=0.7, area=1.1),
        "w_mult1": FuType("w_mult1", delay=23.0, energy=2.3, area=3.9),
    }
    selection = {
        OpKind.LT: "comp1", OpKind.GT: "comp1", OpKind.LE: "comp1",
        OpKind.GE: "comp1", OpKind.EQ: "comp1", OpKind.NE: "comp1",
        OpKind.ADD: "cla1", OpKind.SUB: "cla1",
        OpKind.INC: "incr1", OpKind.DEC: "incr1",
        OpKind.MUL: "w_mult1",
        OpKind.NEG: "cla1",
    }
    return Library(
        name="table1",
        fu_types=fu_types,
        selection=selection,
        register=FuType("reg1", delay=3.0, energy=0.3, area=1.0),
        memory=FuType("mem1", delay=15.0, energy=1.9, area=8.1),
    )


def table1_allocation() -> Allocation:
    """Allocation used in Example 1 (Table 1's ``#`` column)."""
    return Allocation({"comp1": 2, "cla1": 2, "incr1": 1, "w_mult1": 1})


def dac98_library() -> Library:
    """The Section-5 experimental library (a1, sb1, mt1, cp1, e1, i1, n1, s1).

    Delays are the paper's; energy constants are our calibrated
    substitution (see module docstring and DESIGN.md).
    """
    fu_types = {
        "a1": FuType("a1", delay=10.0, energy=1.3, area=1.5),
        "sb1": FuType("sb1", delay=10.0, energy=1.3, area=1.5),
        "mt1": FuType("mt1", delay=23.0, energy=2.3, area=3.9),
        "cp1": FuType("cp1", delay=10.0, energy=1.1, area=1.3),
        "e1": FuType("e1", delay=5.0, energy=0.6, area=0.9),
        "i1": FuType("i1", delay=5.0, energy=0.7, area=1.1),
        "n1": FuType("n1", delay=2.0, energy=0.2, area=0.4),
        "s1": FuType("s1", delay=10.0, energy=0.9, area=1.2),
    }
    selection = {
        OpKind.ADD: "a1",
        OpKind.SUB: "sb1", OpKind.NEG: "sb1",
        OpKind.MUL: "mt1",
        OpKind.LT: "cp1", OpKind.GT: "cp1", OpKind.LE: "cp1",
        OpKind.GE: "cp1",
        OpKind.EQ: "e1", OpKind.NE: "e1",
        OpKind.INC: "i1", OpKind.DEC: "i1",
        OpKind.BNOT: "n1", OpKind.LNOT: "n1",
        OpKind.BAND: "n1", OpKind.BOR: "n1", OpKind.BXOR: "n1",
        OpKind.LAND: "n1", OpKind.LOR: "n1",
        OpKind.SHL: "s1", OpKind.SHR: "s1",
        OpKind.DIV: "mt1", OpKind.MOD: "mt1",
    }
    return Library(
        name="dac98",
        fu_types=fu_types,
        selection=selection,
        register=FuType("reg1", delay=3.0, energy=0.3, area=1.0),
        memory=FuType("mem1", delay=15.0, energy=1.9, area=8.1),
    )


def memory_resource_name(array: str) -> str:
    """Resource name for the memory holding ``array``."""
    return MEMORY_PREFIX + array

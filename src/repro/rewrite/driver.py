"""Incremental candidate-enumeration driver.

The legacy path re-ran every transformation's full-behavior scan for
every seed of every generation.  :class:`RewriteDriver` converts that
into footprint-proportional work with two mechanisms:

* **memoization** — enumeration results are cached per behavior, keyed
  on the *raw* (id-sensitive) fingerprint.  Seeds that survive between
  generations, or identical children reached through different
  lineages with identical numbering, cost one dictionary lookup.
* **incremental re-enumeration** — when a behavior was produced by
  :meth:`apply`, the driver knows its parent's raw fingerprint and the
  exact dirty set (from the graph mutation journal).  For LOCAL
  patterns it carries forward every cached parent match whose declared
  dependency set misses the dirty set, and re-runs ``match_at`` only on
  the pattern's ``rescan_roots``.  GLOBAL patterns that declare a
  mutation ``domain`` (the loop restructurers) are carried wholesale
  when the dirty set misses it; domain-less GLOBAL patterns (CSE) are
  re-run in full.  The whole incremental path is gated on the
  region-structure key being unchanged.

Soundness notes:

* matches name concrete node ids, which is why the cache keys on the
  raw fingerprint — the canonical (renumbering-invariant) fingerprint
  would merge twins whose ids mean different things;
* a carried match's dependency set was computed on the parent, but its
  nodes are untouched in the child, so recomputing it there would give
  the same answer — carrying the set forward keeps grandchild
  invalidation exact;
* legacy transformations (``find()`` overriders) still benefit from
  memoization: a raw-fingerprint hit implies identical node ids, so
  their closure-based candidates remain valid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, TYPE_CHECKING

from ..core.evalcache import EvalCache, cached_raw_fingerprint
from ..errors import ReproError
from ..obs.trace import NULL_TRACER, Tracer
from .analyses import AnalysisManager
from .pattern import LOCAL, Match, RewritePattern, supports_pattern_api

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cdfg.regions import Behavior
    from ..transforms.base import Candidate, TransformLibrary


@dataclass
class RewriteStats:
    """Counters describing the driver's enumeration work."""

    requests: int = 0
    memo_hits: int = 0
    full_scans: int = 0
    incremental_scans: int = 0
    carried_matches: int = 0
    rescanned_matches: int = 0
    legacy_finds: int = 0
    applies: int = 0
    enum_seconds: float = 0.0
    apply_seconds: float = 0.0
    #: dependent macro-chains enumerated (see :meth:`RewriteDriver
    #: .chains`) and the seconds spent building them
    chains: int = 0
    chain_seconds: float = 0.0

    def add(self, other: "RewriteStats") -> "RewriteStats":
        return RewriteStats(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)})

    def minus(self, other: "RewriteStats") -> "RewriteStats":
        return RewriteStats(**{
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)})

    def copy(self) -> "RewriteStats":
        return RewriteStats(**self.as_dict())

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Per-pattern cached matches: (match, dependency set) pairs.  LOCAL
#: patterns and GLOBAL patterns with a declared ``domain`` store real
#: dependency sets (carry-forward filters on them); domain-less GLOBAL
#: patterns (never carried) store empty sets.
_MatchList = List[Tuple[Match, FrozenSet[int]]]


class _Entry:
    """Cached enumeration result for one behavior."""

    __slots__ = ("candidates", "matches", "domains", "structure_key")

    def __init__(self, candidates: List["Candidate"],
                 matches: Dict[str, _MatchList],
                 domains: Dict[str, Optional[FrozenSet[int]]],
                 structure_key: Tuple) -> None:
        self.candidates = candidates
        self.matches = matches
        self.domains = domains
        self.structure_key = structure_key


class RewriteDriver:
    """Memoizing, incremental candidate enumerator over a library."""

    def __init__(self, library: "TransformLibrary", *,
                 incremental: bool = True, cache_size: int = 512,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.library = library
        self.incremental = incremental
        self.stats = RewriteStats()
        self._cache = EvalCache(max_entries=cache_size)
        self._tracer = tracer

    @property
    def cache_stats(self):
        return self._cache.stats

    # -- application ---------------------------------------------------
    def apply(self, behavior: "Behavior", candidate: "Candidate", *,
              validate: bool = True, hygiene: bool = True) -> "Behavior":
        """Apply ``candidate`` and record provenance on the child.

        The child is annotated with ``_rw_parent`` (parent raw
        fingerprint + dirty set) for incremental enumeration, and — for
        match-backed candidates — ``_rw_pair`` (parent raw fingerprint ×
        match fingerprint) for the engine's pair memoization.
        """
        from ..transforms.base import apply_candidate
        t0 = time.perf_counter()
        parent_fp = cached_raw_fingerprint(behavior)
        try:
            child, dirty = apply_candidate(candidate, behavior,
                                           validate=validate,
                                           hygiene=hygiene)
        finally:
            self.stats.applies += 1
            self.stats.apply_seconds += time.perf_counter() - t0
        child._rw_parent = (parent_fp, dirty)
        if candidate.match is not None:
            child._rw_pair = (parent_fp, candidate.match.fingerprint)
        return child

    # -- enumeration ---------------------------------------------------
    def candidates(self, behavior: "Behavior") -> List["Candidate"]:
        """All candidates on ``behavior``, canonically sorted by
        (transform, footprint, fingerprint)."""
        t0 = time.perf_counter()
        self.stats.requests += 1
        fp = cached_raw_fingerprint(behavior)
        entry = self._cache.get(fp)
        if entry is None:
            entry = self._enumerate(behavior)
            self._cache.put(fp, entry)
        else:
            self.stats.memo_hits += 1
        self.stats.enum_seconds += time.perf_counter() - t0
        return list(entry.candidates)

    def chains(self, behavior: "Behavior", *, depth: int = 2,
               limit: int = 8, max_branch: int = 2,
               roots: Optional[List["Candidate"]] = None
               ) -> List[Tuple["Behavior", Tuple["Candidate", ...]]]:
        """Dependent multi-rewrite chains rooted at ``roots``.

        The macro-move enumerator (``docs/search.md``): apply a root
        candidate, read the exact dirty set off the child's provenance
        annotation (``_rw_parent``, the same journal that powers
        incremental re-enumeration), and follow up with candidates whose
        match sites intersect it — i.e. rewrites *enabled or reshaped
        by* the previous step, not independent moves that a later
        generation would find anyway.  Recursion continues to ``depth``
        rewrites, taking at most ``max_branch`` dependent follow-ups per
        node and at most ``limit`` chains per call.

        Returns ``(final_behavior, steps)`` pairs where ``steps`` is the
        applied :class:`~repro.transforms.base.Candidate` chain in
        order; only chains of length >= 2 are returned (single rewrites
        are the ordinary neighborhood).  Enumeration is deterministic:
        roots and follow-ups are visited in the canonical candidate
        order, and every intermediate enumeration goes through the
        incremental memo, so chain building is footprint-proportional
        too.
        """
        out: List[Tuple["Behavior", Tuple["Candidate", ...]]] = []
        if depth < 2 or limit <= 0:
            return out
        t0 = time.perf_counter()
        root_cands = roots if roots is not None \
            else self.candidates(behavior)
        for cand in root_cands:
            if len(out) >= limit:
                break
            try:
                child = self.apply(behavior, cand)
            except ReproError:
                continue
            self._extend_chain(child, (cand,), depth, max_branch,
                               limit, out)
        self.stats.chains += len(out)
        self.stats.chain_seconds += time.perf_counter() - t0
        return out

    def _extend_chain(self, behavior: "Behavior", steps: Tuple,
                      depth: int, max_branch: int, limit: int,
                      out: List) -> None:
        """Grow one chain by dependent follow-ups (recursive helper)."""
        provenance = getattr(behavior, "_rw_parent", None)
        dirty: FrozenSet[int] = provenance[1] if provenance is not None \
            else frozenset()
        if not dirty:
            return
        taken = 0
        for cand in self.candidates(behavior):
            if len(out) >= limit:
                return
            if taken >= max_branch:
                break
            if not dirty.intersection(cand.sites):
                continue
            try:
                child = self.apply(behavior, cand)
            except ReproError:
                continue
            taken += 1
            chain = steps + (cand,)
            out.append((child, chain))
            if len(chain) < depth:
                self._extend_chain(child, chain, depth, max_branch,
                                   limit, out)

    #: Incremental work is proportional to the dirty set; once a rewrite
    #: touched more than this fraction of the graph, a plain full scan
    #: is cheaper than carry-filtering plus a near-total rescan.
    DIRTY_FRACTION_LIMIT = 1 / 3

    def _parent_entry(self, behavior: "Behavior",
                      structure_key: Tuple
                      ) -> Tuple[Optional[_Entry], FrozenSet[int]]:
        """The cached parent entry, when incremental carry is legal."""
        if not self.incremental:
            return None, frozenset()
        provenance = getattr(behavior, "_rw_parent", None)
        if provenance is None:
            return None, frozenset()
        parent_fp, dirty = provenance
        if len(dirty) > self.DIRTY_FRACTION_LIMIT * len(behavior.graph.nodes):
            return None, frozenset()
        parent = self._cache.peek(parent_fp)
        if parent is None or parent.structure_key != structure_key:
            return None, frozenset()
        return parent, dirty

    def _enumerate(self, behavior: "Behavior") -> _Entry:
        from ..transforms.base import Candidate
        analyses = AnalysisManager(behavior)
        structure_key = analyses.structure_key()
        parent, dirty = self._parent_entry(behavior, structure_key)
        mode = "incremental" if parent is not None else "full"
        with self._tracer.span("rewrite.enumerate", mode=mode,
                               nodes=len(behavior.graph.nodes)):
            candidates: List[Candidate] = []
            matches: Dict[str, _MatchList] = {}
            domains: Dict[str, Optional[FrozenSet[int]]] = {}
            for t in self.library.transformations:
                if not supports_pattern_api(t):
                    self.stats.legacy_finds += 1
                    candidates.extend(t.find(behavior))
                    continue
                pairs: Optional[_MatchList] = None
                if parent is not None and t.name in parent.matches:
                    if t.scope == LOCAL:
                        pairs = self._incremental_matches(
                            t, behavior, analyses,
                            parent.matches[t.name], dirty)
                    elif parent.domains.get(t.name) is not None:
                        if not (parent.domains[t.name] & dirty):
                            # The rewrite missed the pattern's declared
                            # mutation domain (and the structure key is
                            # unchanged): the parent's matches stand.
                            self.stats.incremental_scans += 1
                            pairs = parent.matches[t.name]
                            self.stats.carried_matches += len(pairs)
                        else:
                            pairs = self._scoped_matches(
                                t, behavior, analyses,
                                parent.matches[t.name], dirty)
                if pairs is None:
                    pairs = self._full_matches(t, behavior, analyses)
                matches[t.name] = pairs
                domains[t.name] = (t.domain(behavior, analyses)
                                   if t.scope != LOCAL else None)
                candidates.extend(Candidate.from_match(t, m)
                                  for m, _ in pairs)
            candidates.sort(key=lambda c: c.sort_key)
        return _Entry(candidates, matches, domains, structure_key)

    def _full_matches(self, pattern: RewritePattern, behavior: "Behavior",
                      analyses: AnalysisManager) -> _MatchList:
        self.stats.full_scans += 1
        carried = (pattern.scope == LOCAL
                   or pattern.domain(behavior, analyses) is not None)
        pairs: _MatchList = []
        seen: Set[str] = set()
        for m in pattern.match(behavior, analyses):
            if m.fingerprint in seen:
                continue
            seen.add(m.fingerprint)
            deps = (frozenset(pattern.dependencies(behavior, m))
                    if carried else frozenset())
            pairs.append((m, deps))
        return pairs

    def _incremental_matches(self, pattern: RewritePattern,
                             behavior: "Behavior",
                             analyses: AnalysisManager,
                             parent_pairs: _MatchList,
                             dirty: FrozenSet[int]) -> _MatchList:
        self.stats.incremental_scans += 1
        graph = behavior.graph
        pairs: _MatchList = [(m, deps) for m, deps in parent_pairs
                             if not (deps & dirty)]
        self.stats.carried_matches += len(pairs)
        seen = {m.fingerprint for m, _ in pairs}
        roots = pattern.rescan_roots(behavior, analyses, set(dirty))
        fresh = 0
        for nid in sorted(roots):
            if nid not in graph.nodes:
                continue
            for m in pattern.match_at(behavior, analyses, nid):
                if m.fingerprint in seen:
                    continue
                seen.add(m.fingerprint)
                deps = frozenset(pattern.dependencies(behavior, m))
                pairs.append((m, deps))
                fresh += 1
        self.stats.rescanned_matches += fresh
        return pairs

    def _scoped_matches(self, pattern: RewritePattern,
                        behavior: "Behavior",
                        analyses: AnalysisManager,
                        parent_pairs: _MatchList,
                        dirty: FrozenSet[int]) -> Optional[_MatchList]:
        """GLOBAL carry: keep parent matches whose dependency set misses
        ``dirty``, re-scan only the dirty-affected portion via
        ``match_scoped``.  None when the pattern doesn't support it."""
        scoped = pattern.match_scoped(behavior, analyses, set(dirty))
        if scoped is None:
            return None
        self.stats.incremental_scans += 1
        pairs: _MatchList = [(m, deps) for m, deps in parent_pairs
                             if not (deps & dirty)]
        self.stats.carried_matches += len(pairs)
        seen = {m.fingerprint for m, _ in pairs}
        fresh = 0
        for m in scoped:
            if m.fingerprint in seen:
                continue
            seen.add(m.fingerprint)
            pairs.append((m, frozenset(pattern.dependencies(behavior, m))))
            fresh += 1
        self.stats.rescanned_matches += fresh
        return pairs

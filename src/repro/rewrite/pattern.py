"""`Match` records and the `RewritePattern` base class.

A :class:`Match` is the declarative replacement for the old
closure-based ``Candidate.mutate``: it names the pattern that produced
it, the node ids it will touch (``footprint``), and a picklable
``params`` tuple with everything ``apply()`` needs to re-find the
rewrite site.  Because a match carries no closures it can be hashed,
deduplicated across lineages, cached by the enumeration driver, and
shipped to pool workers.

Matches name *concrete node ids*, so they are only meaningful on the
exact behavior (including numbering) they were enumerated on — the
driver keys its cache on the raw fingerprint
(:func:`repro.core.evalcache.behavior_raw_fingerprint`) for this
reason.

A :class:`RewritePattern` declares a ``scope``:

* :data:`LOCAL` patterns implement :meth:`RewritePattern.match_at`
  (matches rooted at a single node) plus :meth:`dependencies` /
  :meth:`rescan_roots`, which lets the driver carry unaffected matches
  forward after a rewrite and re-scan only a small root set;
* :data:`GLOBAL` patterns (loop restructurers, CSE) implement
  :meth:`match` directly and are fully re-enumerated on every new
  behavior (still memoized by the driver on the raw fingerprint).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, List, Optional, Set, Tuple

from ..cdfg.ir import _digest
from ..errors import TransformError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cdfg.regions import Behavior
    from .analyses import AnalysisManager

#: Pattern scopes.  LOCAL patterns support incremental re-enumeration
#: via ``match_at``/``dependencies``/``rescan_roots``; GLOBAL patterns
#: are re-run in full on every new behavior.
LOCAL = "local"
GLOBAL = "global"


@dataclass(frozen=True)
class Match:
    """One applicable rewrite, found by a pattern on a behavior.

    ``footprint`` is the non-empty, deduplicated, sorted tuple of node
    ids the rewrite reads or writes — hot-block focusing and the
    incremental driver both key on it, so under-reporting it is a
    correctness bug (``tools/check_transforms.py`` enforces non-empty).
    ``params`` must be a picklable, repr-stable tuple (ints, strings,
    :class:`~repro.cdfg.ops.OpKind` members, nested tuples).
    """

    pattern: str
    description: str
    footprint: Tuple[int, ...]
    params: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if not self.footprint:
            raise TransformError(
                f"pattern {self.pattern!r} produced a match with an empty "
                f"footprint ({self.description!r}); every match must "
                f"declare the node ids it touches")
        canon = tuple(sorted(set(self.footprint)))
        if canon != self.footprint:
            object.__setattr__(self, "footprint", canon)

    @cached_property
    def fingerprint(self) -> str:
        """Stable content hash of the match (used for dedup and the
        engine's parent-fingerprint × match memoization)."""
        payload = repr((self.pattern, self.description,
                        self.footprint, self.params))
        return _digest(payload.encode()).hexdigest()

    @property
    def sort_key(self) -> Tuple[str, Tuple[int, ...], str]:
        """Canonical enumeration order: (pattern, footprint, fingerprint)."""
        return (self.pattern, self.footprint, self.fingerprint)

    def touches(self, sites: Iterable[int]) -> bool:
        """True when the footprint intersects ``sites``."""
        wanted = sites if isinstance(sites, (set, frozenset)) else set(sites)
        return any(n in wanted for n in self.footprint)


class RewritePattern:
    """Base class for declarative transformations.

    Subclasses set ``name`` and ``scope`` and implement ``apply`` plus
    either ``match_at`` (LOCAL) or ``match`` (GLOBAL).  The default
    ``match`` of a LOCAL pattern simply calls ``match_at`` on every
    node, so full and incremental enumeration share one matcher.
    """

    name: str = "pattern"
    scope: str = GLOBAL

    # -- matching ------------------------------------------------------
    def match(self, behavior: "Behavior",
              analyses: "AnalysisManager") -> List[Match]:
        """Enumerate every match on ``behavior``."""
        if self.scope == LOCAL:
            out: List[Match] = []
            for nid in sorted(behavior.graph.nodes):
                out.extend(self.match_at(behavior, analyses, nid))
            return out
        raise NotImplementedError(
            f"{type(self).__name__} must implement match()")

    def match_at(self, behavior: "Behavior", analyses: "AnalysisManager",
                 nid: int) -> List[Match]:
        """Matches rooted at ``nid`` (LOCAL patterns only)."""
        raise NotImplementedError(
            f"{type(self).__name__} is not a local pattern")

    # -- rewriting -----------------------------------------------------
    def apply(self, behavior: "Behavior", match: Match) -> None:
        """Mutate ``behavior`` in place according to ``match``.

        Called on a private copy; hygiene (DCE, duplicate merging) and
        validation run afterwards in
        :func:`repro.transforms.base.apply_candidate`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement apply()")

    # -- incremental support (LOCAL patterns) --------------------------
    def dependencies(self, behavior: "Behavior", match: Match) -> frozenset:
        """Node ids whose mutation invalidates ``match``.

        The driver drops a carried match when this set intersects the
        dirty set of the rewrite that produced the new behavior.  The
        default — the footprint itself — is only correct for patterns
        whose match predicate reads nothing outside the footprint;
        patterns that inspect neighbors must widen it.
        """
        return frozenset(match.footprint)

    def rescan_roots(self, behavior: "Behavior", analyses: "AnalysisManager",
                     dirty: Set[int]) -> Set[int]:
        """Root nodes where new matches may have appeared after a rewrite
        that touched ``dirty``.  Must over-approximate: every node at
        which ``match_at`` could newly succeed has to be included."""
        return set(dirty)

    # -- incremental support (GLOBAL patterns) -------------------------
    def domain(self, behavior: "Behavior",
               analyses: "AnalysisManager") -> "Optional[frozenset]":
        """Node set whose mutation can change this pattern's match set,
        or ``None`` when unknown (always rescan).

        GLOBAL patterns may override this to enable wholesale
        carry-forward: when a rewrite's dirty set misses the domain the
        parent enumerated under — and the region structure key is
        unchanged — the driver reuses the parent's matches verbatim
        instead of re-running :meth:`match`.  The returned set must
        over-approximate: any mutation outside it has to be provably
        unable to add, drop, or alter a match.
        """
        return None

    def match_scoped(self, behavior: "Behavior",
                     analyses: "AnalysisManager",
                     dirty: Set[int]) -> Optional[List[Match]]:
        """Matches that may have appeared or changed after a rewrite
        touching ``dirty`` — the finer companion of :meth:`domain`'s
        all-or-nothing gate (GLOBAL patterns only).

        The driver pairs this with per-match :meth:`dependencies`: it
        drops carried parent matches whose dependency set intersects
        ``dirty`` and merges in whatever this returns.  Together they
        must reproduce a full :meth:`match` exactly — for the loop
        restructurers that means re-scanning every loop whose nodes
        intersect ``dirty``, *including* loops that only lost nodes:
        a dirty id absent from the child graph was removed from a loop
        the child alone cannot identify, so such rewrites must widen
        the re-scan to all loops (``AnalysisManager.loops_touching``
        encapsulates both cases).  Return ``None`` when unsupported
        (the driver falls back to a full rescan).
        """
        return None


def supports_pattern_api(transform: object) -> bool:
    """True when ``transform`` implements the pattern API (rather than
    only the legacy ``find()`` scan)."""
    cls = type(transform)
    return (cls.match is not RewritePattern.match
            or cls.match_at is not RewritePattern.match_at)

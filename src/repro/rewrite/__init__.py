"""Declarative rewrite-pattern infrastructure for the transform layer.

This package splits every behavioral transformation into

* a **match** phase (:class:`~repro.rewrite.pattern.RewritePattern`
  returning picklable :class:`~repro.rewrite.pattern.Match` records with
  a declared node footprint and a stable fingerprint),
* shared, cached **analyses**
  (:class:`~repro.rewrite.analyses.AnalysisManager`), and
* an incremental enumeration **driver**
  (:class:`~repro.rewrite.driver.RewriteDriver`) that re-runs only the
  patterns whose matches could intersect the nodes a rewrite touched.

See ``docs/transformations.md`` for the authoring guide.
"""

from .pattern import (GLOBAL, LOCAL, Match, RewritePattern,
                      supports_pattern_api)
from .analyses import AnalysisManager
from .driver import RewriteDriver, RewriteStats

__all__ = [
    "GLOBAL",
    "LOCAL",
    "Match",
    "RewritePattern",
    "supports_pattern_api",
    "AnalysisManager",
    "RewriteDriver",
    "RewriteStats",
]

"""Shared, lazily-computed analyses over a single behavior.

Before this module, each transformation privately recomputed whatever it
needed on every ``find()`` call: `loop_fusion` re-derived loop
independence, `cse` walked the whole region tree once *per node* to
partition by owner region, `code_motion`/`distributivity` each built
their own :class:`~repro.cdfg.analysis.GuardAnalysis`, and so on — per
transform, per seed, per generation.  An :class:`AnalysisManager` is
created once per behavior (the driver owns it) and hands all patterns
the same cached results.

Everything is computed lazily on first use and memoized.  The manager
is tied to one immutable behavior snapshot; pipelines that mutate a
behavior in place between queries must call :meth:`AnalysisManager
.invalidate` with the rewrite's footprint.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..cdfg.analysis import Guard, GuardAnalysis
from ..cdfg.ops import OpKind
from ..cdfg.regions import (Behavior, BlockRegion, LoopRegion, Region,
                            SeqRegion)
from ..errors import CdfgError


class AnalysisManager:
    """Caches per-behavior analyses shared across rewrite patterns.

    Provided analyses:

    * :attr:`guards` — effective-guard / mutual-exclusion analysis;
    * :attr:`loops`, :attr:`loop_conds`, :attr:`header_joins` — loop
      structure queries;
    * :attr:`region_map` — node id → owning region, built in one tree
      walk (replaces the per-node ``owner_region`` scan);
    * :meth:`const_value` / :meth:`direct_const` — the constant lattice
      used by folding and branch elimination;
    * :meth:`loops_independent` — memoized loop-fusion legality;
    * :meth:`dominators` / :meth:`dominates` — data-flow dominance;
    * :meth:`structure_key` — a hash of the region *shape*, used by the
      driver to gate incremental carry-forward.
    """

    def __init__(self, behavior: Behavior) -> None:
        self.behavior = behavior
        self._guards: Optional[GuardAnalysis] = None
        self._loops: Optional[List[LoopRegion]] = None
        self._loop_nodes: Optional[FrozenSet[int]] = None
        self._loop_conds: Optional[FrozenSet[int]] = None
        self._header_joins: Optional[FrozenSet[int]] = None
        self._region_map: Optional[Dict[int, Region]] = None
        self._const: Dict[int, Optional[int]] = {}
        self._independent: Dict[Tuple[str, str], bool] = {}
        self._dominators: Optional[Dict[int, Set[int]]] = None
        self._structure_key: Optional[Tuple] = None

    # -- guard / mutual-exclusion --------------------------------------
    @property
    def guards(self) -> GuardAnalysis:
        if self._guards is None:
            self._guards = GuardAnalysis(self.behavior.graph)
        return self._guards

    def effective_guard(self, nid: int) -> Guard:
        return self.guards.effective_guard(nid)

    def mutually_exclusive(self, a: int, b: int) -> bool:
        return self.guards.mutually_exclusive(a, b)

    # -- loop structure ------------------------------------------------
    @property
    def loops(self) -> List[LoopRegion]:
        if self._loops is None:
            self._loops = self.behavior.loops()
        return self._loops

    @property
    def loop_nodes(self) -> FrozenSet[int]:
        """Every node owned by any loop (bodies, cond sections, header
        joins) — the mutation domain of the loop-restructuring patterns:
        under an unchanged structure key, their match sets are pure
        functions of this node set."""
        if self._loop_nodes is None:
            self._loop_nodes = frozenset(
                nid for lp in self.loops for nid in lp.node_ids())
        return self._loop_nodes

    def loops_touching(self, dirty: Set[int]) -> List[LoopRegion]:
        """Loops whose match sets a rewrite touching ``dirty`` may have
        changed — the loop-selection test for ``match_scoped``.

        A dirty id still in the graph names its owning loops directly.
        A dirty id *absent* from the graph was removed by the rewrite
        (or its hygiene passes), so some loop shrank — which can create
        matches (a node whose last in-loop input died becomes
        hoistable; a loop whose last ineligible member died becomes
        unrollable) — but the child alone cannot say *which* loop the
        dead id belonged to, so every loop is suspect.
        """
        nodes = self.behavior.graph.nodes
        if any(nid not in nodes for nid in dirty):
            return list(self.loops)
        return [lp for lp in self.loops if lp.node_ids() & dirty]

    @property
    def loop_conds(self) -> FrozenSet[int]:
        if self._loop_conds is None:
            self._loop_conds = frozenset(lp.cond for lp in self.loops)
        return self._loop_conds

    @property
    def header_joins(self) -> FrozenSet[int]:
        if self._header_joins is None:
            self._header_joins = frozenset(
                lv.join for lp in self.loops for lv in lp.loop_vars)
        return self._header_joins

    # -- region ownership ----------------------------------------------
    @property
    def region_map(self) -> Dict[int, Region]:
        """Node id → owning region (same semantics as
        :func:`repro.transforms.cleanup.owner_region`, one walk)."""
        if self._region_map is None:
            owners: Dict[int, Region] = {}
            for region in self.behavior.region.walk():
                if isinstance(region, BlockRegion):
                    for nid in region.nodes:
                        owners.setdefault(nid, region)
                elif isinstance(region, LoopRegion):
                    for nid in region.cond_nodes:
                        owners.setdefault(nid, region)
                    for lv in region.loop_vars:
                        owners.setdefault(lv.join, region)
            self._region_map = owners
        return self._region_map

    def owner(self, nid: int) -> Optional[Region]:
        return self.region_map.get(nid)

    # -- constant lattice ----------------------------------------------
    def direct_const(self, nid: int) -> Optional[int]:
        """The node's value if it is a CONST, else None."""
        node = self.behavior.graph.nodes[nid]
        return node.value if node.kind is OpKind.CONST else None

    def const_value(self, nid: int) -> Optional[int]:
        """Constant value of ``nid`` if it is a CONST or an evaluable op
        whose direct inputs are all CONST (one level, no fixpoint —
        matching what branch elimination historically checked)."""
        if nid in self._const:
            return self._const[nid]
        from ..cdfg.ops import OP_INFO, evaluate
        g = self.behavior.graph
        node = g.nodes[nid]
        value: Optional[int] = None
        if node.kind is OpKind.CONST:
            value = node.value
        else:
            info = OP_INFO.get(node.kind)
            if info is not None and info.evaluator is not None:
                inputs = list(g.input_ports(nid).values())
                vals = [self.direct_const(s) for s in inputs]
                if inputs and all(v is not None for v in vals):
                    value = evaluate(node.kind, *vals)
        self._const[nid] = value
        return value

    # -- loop independence ---------------------------------------------
    def loops_independent(self, first: LoopRegion,
                          second: LoopRegion) -> bool:
        key = (first.name, second.name)
        if key not in self._independent:
            from ..transforms.loop_fusion import loops_independent
            self._independent[key] = loops_independent(
                self.behavior, first, second)
        return self._independent[key]

    # -- dominance -----------------------------------------------------
    def dominators(self) -> Dict[int, Set[int]]:
        """Data-flow dominators: dom(n) = {n} ∪ ⋂ dom(preds).

        Nodes with no data inputs are entries (dominated only by
        themselves).  Back edges through loop-header joins are ignored,
        mirroring :class:`~repro.cdfg.analysis.GuardAnalysis`.
        """
        if self._dominators is not None:
            return self._dominators
        g = self.behavior.graph
        headers = self.header_joins
        order = sorted(g.nodes)
        preds: Dict[int, List[int]] = {}
        for nid in order:
            ins = list(g.input_ports(nid).values())
            if nid in headers and ins:
                ins = ins[:1]  # keep the init edge, drop the back edge
            preds[nid] = ins
        dom: Dict[int, Set[int]] = {n: {n} if not preds[n] else set(order)
                                    for n in order}
        changed = True
        while changed:
            changed = False
            for nid in order:
                if not preds[nid]:
                    continue
                inter: Optional[Set[int]] = None
                for p in preds[nid]:
                    d = dom.get(p, set())
                    inter = set(d) if inter is None else inter & d
                new = (inter or set()) | {nid}
                if new != dom[nid]:
                    dom[nid] = new
                    changed = True
        self._dominators = dom
        return dom

    def dominates(self, a: int, b: int) -> bool:
        """True when every data-flow path to ``b`` passes through ``a``."""
        return a in self.dominators().get(b, set())

    # -- structure key -------------------------------------------------
    def structure_key(self) -> Tuple:
        """A recursive tuple describing the region *shape* (loop nesting,
        conditions, trip counts, header joins) without block contents.

        The driver only carries matches forward from a parent behavior
        whose structure key equals the child's: any loop restructuring
        (unroll, fusion, speculative unroll) changes it and forces a
        full re-enumeration.
        """
        if self._structure_key is None:
            self._structure_key = _structure_key(self.behavior.region)
        return self._structure_key

    # -- invalidation --------------------------------------------------
    def invalidate(self, footprint: Set[int]) -> None:
        """Drop results a rewrite touching ``footprint`` may have stale.

        Node-local memos (the constant lattice) are dropped only for the
        footprint and its data users; transitive analyses (guards,
        dominators, regions, loop structure) are dropped wholesale —
        recomputing them lazily is cheaper than tracking their exact
        scope.
        """
        if not footprint:
            return
        g = self.behavior.graph
        stale = set(footprint)
        for nid in footprint:
            if nid in g.nodes:
                stale.update(dst for dst, _ in g.data_users(nid))
        for nid in stale:
            self._const.pop(nid, None)
        self._guards = None
        self._loops = None
        self._loop_nodes = None
        self._loop_conds = None
        self._header_joins = None
        self._region_map = None
        self._independent.clear()
        self._dominators = None
        self._structure_key = None


def _structure_key(region: Region) -> Tuple:
    if isinstance(region, BlockRegion):
        return ("B",)
    if isinstance(region, SeqRegion):
        return ("S",) + tuple(_structure_key(c) for c in region.children)
    if isinstance(region, LoopRegion):
        return ("L", region.name, region.cond, region.trip_count,
                tuple(sorted(lv.join for lv in region.loop_vars)),
                _structure_key(region.body))
    raise CdfgError(f"unknown region type {type(region).__name__}")

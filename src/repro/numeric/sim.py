"""Vectorized Monte-Carlo simulation (numpy RNG batching).

All runs advance in lockstep: one ``Generator.random`` draw per step
covers every still-active run, and per-state cumulative transition
rows (padded into one matrix) turn edge selection into a comparison
count.  Statistically equivalent to :func:`repro.stg.simulate.simulate`
but drawing from numpy's PCG64 stream, so individual paths differ from
the scalar walker — use it for cross-validation at scale, not in
bit-identity gates (simulation never feeds candidate scoring).

Contract differences from the scalar walker, both documented here and
in ``docs/performance.md``: every state with outgoing transitions is
row-sum-validated up front (the scalar walk only checks states it
happens to visit), and the ``max_cycles`` guard bounds lockstep steps
rather than one run's path length.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import StgError
from ..stg.simulate import ROW_SUM_TOL, WalkResult


def simulate_batched(stg, runs: int = 1000, seed: int = 0,
                     max_cycles: int = 1_000_000) -> WalkResult:
    """Estimate schedule-length statistics with batched random walks."""
    stg.validate()
    if runs <= 0:
        return WalkResult(runs=0, mean_length=0.0, min_length=0,
                          max_length=0, state_visit_rate={})
    ids = stg.state_ids()
    index = {sid: i for i, sid in enumerate(ids)}
    n = len(ids)
    degrees: List[int] = []
    rows: List[list] = []
    for sid in ids:
        edges = stg.out_edges(sid)
        rows.append(edges)
        degrees.append(len(edges))
    max_deg = max(degrees) if degrees else 0
    # Padded per-state cumulative rows: +inf padding never wins the
    # "first cumulative above r" comparison.
    cum = np.full((n, max(max_deg, 1)), np.inf)
    dst = np.zeros((n, max(max_deg, 1)), dtype=np.intp)
    totals = np.ones(n)
    dead = np.zeros(n, dtype=bool)
    exit_i = index[stg.exit]
    for i, edges in enumerate(rows):
        if not edges:
            dead[i] = i != exit_i
            continue
        probs = np.array([t.prob for t in edges])
        row = np.cumsum(probs)
        total = float(row[-1])
        if abs(total - 1.0) > ROW_SUM_TOL:
            raise StgError(
                f"state {ids[i]} outgoing probabilities sum to "
                f"{total:.6f}, expected 1 (tolerance {ROW_SUM_TOL})")
        cum[i, :len(edges)] = row
        dst[i, :len(edges)] = [index[t.dst] for t in edges]
        totals[i] = total
    deg_arr = np.asarray(degrees, dtype=np.intp)
    rng = np.random.default_rng(seed)
    cur = np.full(runs, index[stg.entry], dtype=np.intp)
    lengths = np.ones(runs, dtype=np.int64)
    visit_counts = np.zeros(n, dtype=np.int64)
    visit_counts[index[stg.entry]] += runs
    active = cur != exit_i
    steps = 0
    while active.any():
        steps += 1
        if steps > max_cycles:
            raise StgError(f"simulation exceeded {max_cycles} cycles")
        live = np.flatnonzero(active)
        states = cur[live]
        if dead[states].any():
            bad = int(states[dead[states]][0])
            raise StgError(
                f"state {ids[bad]} has no outgoing transitions")
        r = rng.random(live.size) * totals[states]
        # Index of the first cumulative strictly above r; clamping to
        # the row degree funnels float-drift leftovers into the last
        # edge, like the scalar walker's fallback.
        choice = (cum[states] <= r[:, None]).sum(axis=1)
        np.minimum(choice, deg_arr[states] - 1, out=choice)
        nxt = dst[states, choice]
        cur[live] = nxt
        lengths[live] += 1
        visit_counts += np.bincount(nxt, minlength=n)
        active[live] = nxt != exit_i
    total_cycles = int(lengths.sum())
    rate: Dict[int, float] = {
        ids[i]: int(c) / total_cycles
        for i, c in enumerate(visit_counts) if c}
    return WalkResult(
        runs=runs,
        mean_length=total_cycles / runs,
        min_length=int(lengths.min()),
        max_length=int(lengths.max()),
        state_visit_rate=rate,
    )

"""Backend objects and per-process installation.

A backend is a small stateful object exposing ``solve_systems`` — the
flush: it takes the list of assembled absorbing-chain systems queued by
one call site and returns one entry per system, either the raw solution
vector or the :class:`~repro.errors.MarkovError` that system produced.
There is no deferred queue to drain: the batch *is* the call, so error
scope and evaluation order stay easy to reason about.

Installation is process-local (module global), mirroring
``repro.stg.markov.set_tracer``: the evaluation engine installs the
configured backend in the parent process and in every pool worker's
initializer, and deep callees (scheduler, region cache, power model)
reach it through :func:`get_backend`.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Sequence, Tuple, Union

from ..errors import ConfigError, MarkovError

#: Canonical backend names (the CLI's ``--numeric-backend`` choices).
SCALAR = "scalar"
BATCHED = "batched"
BACKENDS = (SCALAR, BATCHED)


def _solve_or_error(system) -> Union["object", MarkovError]:
    """One scalar solve, with the MarkovError captured instead of raised."""
    from ..stg.markov import _solve_visits
    try:
        return _solve_visits(system.name, system.transitions,
                             system.index, system.n, system.e)
    except MarkovError as err:
        return err


def _negative_visits_error(system) -> MarkovError:
    """The scalar path's exact negative-visits error for one system."""
    return MarkovError(f"{system.name}: negative expected visits; "
                       f"inconsistent probabilities")


class NumericBackend:
    """Interface shared by the scalar and batched backends."""

    name: str = "?"
    #: True when call sites should gather work into flushes; the scalar
    #: backend leaves every call site on its classic sequential path.
    batched: bool = False
    #: Seconds spent inside solves (matrix assembly from transitions,
    #: LAPACK, validity checks) — the numeric-core metric both backends
    #: accrue symmetrically: the scalar path per ``_solve_visits`` call,
    #: the batched path per flush.  ``+=`` on the class default creates
    #: the per-instance accumulator.
    solve_seconds: float = 0.0
    #: True while a batched flush is timing itself, so the per-system
    #: scalar re-solves it falls back on do not double-accrue.
    _in_flush: bool = False

    def solve_systems(self, systems: Sequence) -> List[object]:
        """Solve every system; one result (vector or MarkovError) each."""
        raise NotImplementedError

    def snapshot(self) -> Tuple[int, int]:
        """``(flushes, flushed_systems)`` counters for per-candidate
        deltas (see :class:`~repro.core.telemetry.EvalStats`)."""
        return (0, 0)


class ScalarBackend(NumericBackend):
    """The classic path: each system solved on its own, in order."""

    name = SCALAR
    batched = False

    def solve_systems(self, systems: Sequence) -> List[object]:
        return [_solve_or_error(system) for system in systems]


class BatchedBackend(NumericBackend):
    """Grouped stacked/merged solves with per-system error isolation.

    Dense systems (``n <= SPARSE_THRESHOLD``) are grouped by size and
    solved through one stacked LAPACK call per group — bit-identical to
    individual solves.  Sizes with a single member skip the stack
    machinery and take ``solver.solve_dense_single`` — the same LAPACK
    call as the scalar interior without its per-call constructions
    (block-diagonal merging was rejected; see the ``solver`` module
    docstring).  Sparse systems are solved per-system inside the same
    flush (an assembled block-diagonal *sparse* solve would not be
    per-block bit-identical; see ``docs/performance.md``).  A singular
    member poisons its whole stack, so on ``LinAlgError`` the group is
    re-solved system-by-system, reproducing the scalar path's exact
    per-system ``MarkovError``.
    """

    name = BATCHED
    batched = True

    def __init__(self) -> None:
        self.flushes = 0          #: solve_systems calls with >=1 system
        self.flushed_systems = 0  #: systems routed through flushes
        self.stacked_calls = 0    #: stacked LAPACK calls issued
        self.single_solves = 0    #: lean size-singleton dense solves
        self.solo_solves = 0      #: sparse / singular-isolation solves
        self.max_batch = 0        #: largest flush seen
        # Bound once: flushes are frequent enough (one per candidate's
        # dirty fragments, one per variant-measure pair) that per-call
        # module lookups are measurable against small stacks.
        import time

        import numpy as np

        from . import solver
        self._perf = time.perf_counter
        self._np = np
        self._solver = solver
        # the markov module imports this one, so it is bound lazily on
        # the first flush instead of here
        self._markov = None

    def snapshot(self) -> Tuple[int, int]:
        return (self.flushes, self.flushed_systems)

    @property
    def fill_rate(self) -> float:
        """Average systems per flush (1.0 = no batching happened)."""
        return self.flushed_systems / self.flushes if self.flushes else 0.0

    def solve_systems(self, systems: Sequence) -> List[object]:
        if not systems:
            return []
        markov = self._markov
        if markov is None:
            from ..stg import markov
            self._markov = markov
        self.flushes += 1
        self.flushed_systems += len(systems)
        if len(systems) > self.max_batch:
            self.max_batch = len(systems)
        self._in_flush = True
        t0 = self._perf()
        try:
            # The tracer is the markov module's process-local one, so
            # flush spans nest under whatever schedule/evaluate span is
            # open.  Untraced one- and two-system flushes — the
            # dominant shapes — skip the span and grouping machinery,
            # whose bookkeeping rivals a small solve's cost.
            tracer = markov._TRACER
            if len(systems) <= 2 and not tracer.enabled:
                return self._solve_small(systems,
                                         markov.SPARSE_THRESHOLD)
            return self._solve_grouped(systems, tracer)
        finally:
            self._in_flush = False
            self.solve_seconds += self._perf() - t0

    def _solve_small(self, systems: Sequence,
                     threshold: int) -> List[object]:
        """Span-free flush of at most two systems, counters matching
        :meth:`_solve_grouped` case for case."""
        solver = self._solver
        if (len(systems) == 2 and systems[0].n == systems[1].n
                and systems[0].n <= threshold):
            try:
                v = solver.solve_dense_stack(systems)
            except self._np.linalg.LinAlgError:
                self.solo_solves += 2
                return [_solve_or_error(system) for system in systems]
            self.stacked_calls += 1
            if solver.negative(v):
                return [(_negative_visits_error(system)
                         if solver.negative(vj) else vj)
                        for system, vj in zip(systems, v)]
            return [v[0], v[1]]
        results: List[object] = []
        for system in systems:
            if system.n > threshold:
                results.append(_solve_or_error(system))
                self.solo_solves += 1
                continue
            try:
                v = solver.solve_dense_single(system)
            except self._np.linalg.LinAlgError:
                results.append(_solve_or_error(system))
                self.solo_solves += 1
                continue
            self.single_solves += 1
            if solver.negative(v):
                results.append(_negative_visits_error(system))
            else:
                results.append(v)
        return results

    def _solve_grouped(self, systems: Sequence,
                       tracer) -> List[object]:
        """The general flush: grouped stacked solves under a span."""
        np = self._np
        solver = self._solver
        results: List[object] = [None] * len(systems)
        dense, sparse = solver.group_by_size(systems)
        with tracer.span("numeric.flush", systems=len(systems),
                         dense_groups=len(dense),
                         sparse=len(sparse)) as span:
            singles: List[int] = []
            for n, idxs in sorted(dense.items()):
                if len(idxs) == 1:
                    singles.append(idxs[0])
                    continue
                group = [systems[i] for i in idxs]
                try:
                    v = solver.solve_dense_stack(group)
                except np.linalg.LinAlgError:
                    span.set(singular=True)
                    for i in idxs:
                        results[i] = _solve_or_error(systems[i])
                        self.solo_solves += 1
                    continue
                self.stacked_calls += 1
                if solver.negative(v):
                    # rare: locate the offending members only then
                    for j, i in enumerate(idxs):
                        vi = v[j]
                        if solver.negative(vi):
                            results[i] = _negative_visits_error(
                                systems[i])
                        else:
                            results[i] = vi
                else:
                    for j, i in enumerate(idxs):
                        results[i] = v[j]
            # Size-singleton systems (no stacking partner — the usual
            # shape of a variant-measure pair) take the lean
            # single-solve path: same LAPACK call as the scalar
            # interior, without its per-call constructions.
            for i in singles:
                try:
                    v = solver.solve_dense_single(systems[i])
                except np.linalg.LinAlgError:
                    span.set(singular=True)
                    results[i] = _solve_or_error(systems[i])
                    self.solo_solves += 1
                    continue
                self.single_solves += 1
                if solver.negative(v):
                    results[i] = _negative_visits_error(systems[i])
                else:
                    results[i] = v
            for i in sparse:
                results[i] = _solve_or_error(systems[i])
                self.solo_solves += 1
            span.set(fill=len(systems)
                     / max(len(dense) + len(sparse), 1))
        return results


def batching_available() -> bool:
    """True when the batched backend's numpy machinery imports."""
    try:
        from . import solver  # noqa: F401
    except Exception:
        return False
    return True


def resolve_backend(name: "str | None") -> NumericBackend:
    """Backend instance for a configured name.

    ``None``/empty counts as scalar; ``batched`` silently falls back to
    scalar when numpy batching is unavailable (the configured knob is a
    performance hint, never a correctness switch — both backends are
    bit-identical).  Unknown names raise :class:`ConfigError`.
    """
    if name in (None, "", SCALAR):
        return ScalarBackend()
    if name == BATCHED:
        if not batching_available():
            return ScalarBackend()
        return BatchedBackend()
    raise ConfigError(
        f"unknown numeric backend {name!r}; choose from {BACKENDS}")


#: Process-local installed backend (see :func:`set_backend`).
_BACKEND: NumericBackend = ScalarBackend()


def get_backend() -> NumericBackend:
    """The backend installed in this process."""
    return _BACKEND


def set_backend(backend: "str | NumericBackend | None") -> NumericBackend:
    """Install the process-local backend (a name or an instance)."""
    global _BACKEND
    if isinstance(backend, NumericBackend):
        _BACKEND = backend
    else:
        _BACKEND = resolve_backend(backend)
    return _BACKEND


@contextlib.contextmanager
def use_backend(backend: "str | NumericBackend | None"
                ) -> Iterator[NumericBackend]:
    """Temporarily install a backend (tests, oracles, benchmarks)."""
    previous = _BACKEND
    installed = set_backend(backend)
    try:
        yield installed
    finally:
        set_backend(previous)

"""Stacked and merged dense solves for batches of absorbing chains.

The batched backend groups same-size dense systems and issues one
``np.linalg.solve`` over a ``(k, n, n)`` stack.  numpy's gufunc loops
LAPACK ``gesv`` once per stack item, so the stacked result is
bit-identical to ``k`` individual solves — that equivalence is what
lets the batched backend live under the repository's byte-identity
gate.

Systems with no same-size partner in a flush (the common shape for
variant-measure pairs, whose two chains almost never match in size) go
through :func:`solve_dense_single` — the scalar interior minus its
per-call ndarray constructions.  Packing them into one *block-diagonal*
dense solve was tried and rejected: although partial pivoting never
crosses exactly-zero off-diagonal blocks (pivot indices and the zero
blocks of the LU factors are preserved), optimized BLAS picks different
micro-kernel tails for different matrix dimensions, so a block's
eliminations accumulate in a different order inside the larger matrix
and its solution drifts by a few ulp — which the repository's
byte-identity gate rejects.  (An assembled block-diagonal *sparse*
solve is worse still: a global fill-reducing ordering mixes
eliminations across blocks, so sparse systems are solved per-system.)
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: Stacks up to this many systems fill their Q blocks with a direct
#: per-transition Python loop; larger stacks gather COO-style triplets
#: and accumulate them with one unbuffered ``np.add.at`` (whose fixed
#: call cost only amortizes over enough transitions).  Both branches
#: accumulate in transition-list order into zeroed blocks and finish
#: with the same broadcast ``eye − Qᵀ``, so they are bit-identical.
DIRECT_FILL_MAX = 16

#: Identity matrices by size, shared across solves.  ``np.eye`` is one
#: of the costlier per-solve constructions when the caches are cold
#: mid-campaign, and the subtraction below never mutates its output's
#: inputs, so the cached array stays pristine.  Bounded by the distinct
#: dense sizes seen (``n <= SPARSE_THRESHOLD``).
_EYE: dict = {}


def _eye(n: int) -> np.ndarray:
    e = _EYE.get(n)
    if e is None:
        e = _EYE[n] = np.eye(n)
    return e


def assemble_dense(system) -> np.ndarray:
    """``I − Qᵀ`` of one system, assembled exactly like the scalar path.

    The accumulation (``q[si, di] += t.prob`` in transition-list order)
    mirrors :func:`repro.stg.markov._solve_visits` so duplicate edges
    collapse with the same float-addition order.
    """
    n = system.n
    index = system.index
    q = np.zeros((n, n))
    for t in system.transitions:
        si = index.get(t.src)
        di = index.get(t.dst)
        if si is None or di is None:
            continue
        q[si, di] += t.prob
    return _eye(n) - q.T


def assemble_dense_stack(systems: Sequence) -> np.ndarray:
    """``I − Qᵀ`` of many same-size systems as one ``(k, n, n)`` stack.

    The blocks are accumulated directly in transposed layout
    (``q[j, di, si] += prob``) so the closing subtraction reads
    contiguous memory instead of a transpose view; the addends and
    their order match the scalar path's fill-then-transpose exactly,
    and subtraction is elementwise, so the bits do too.  Small stacks
    (``k <= DIRECT_FILL_MAX``) fill with a direct per-transition loop.
    Larger stacks gather COO-style triplets and accumulate them with
    one unbuffered ``np.add.at``; ``ufunc.at`` applies duplicate
    indices sequentially in array order — the triplet lists preserve
    transition-list order per system — so duplicate edges collapse
    with the same float-addition order either way.
    """
    n = systems[0].n
    k = len(systems)
    q = np.zeros((k, n, n))
    if k <= DIRECT_FILL_MAX:
        for j, system in enumerate(systems):
            index = system.index
            qj = q[j]
            for t in system.transitions:
                si = index.get(t.src)
                di = index.get(t.dst)
                if si is None or di is None:
                    continue
                qj[di, si] += t.prob
    else:
        ks: List[int] = []
        sis: List[int] = []
        dis: List[int] = []
        probs: List[float] = []
        for j, system in enumerate(systems):
            index = system.index
            for t in system.transitions:
                si = index.get(t.src)
                di = index.get(t.dst)
                if si is None or di is None:
                    continue
                ks.append(j)
                sis.append(si)
                dis.append(di)
                probs.append(t.prob)
        if probs:
            np.add.at(q, (ks, dis, sis), probs)
    return _eye(n) - q


def solve_dense_stack(systems: Sequence) -> np.ndarray:
    """One stacked LAPACK call over same-size dense systems.

    The right-hand sides are shipped as ``(k, n, 1)`` — a bare
    ``(k, n)`` is ambiguous under the ``(m,m),(m,n)->(m,n)`` gufunc
    signature.  Raises :class:`numpy.linalg.LinAlgError` if *any* stack
    item is singular; the caller isolates by re-solving items
    individually (which reproduces the scalar path's per-system
    :class:`~repro.errors.MarkovError`).
    """
    n = systems[0].n
    k = len(systems)
    a = assemble_dense_stack(systems)
    b = np.empty((k, n, 1))
    for j, system in enumerate(systems):
        b[j, :, 0] = system.e
    return np.linalg.solve(a, b)[..., 0]


def solve_dense_single(system) -> np.ndarray:
    """One dense solve, lean: the scalar interior without its per-call
    ``np.eye`` construction or the ``(1, n, n)`` stack round trip.

    Identical LAPACK call and bit-identical assembly to the scalar
    path's ``_solve_visits``: the cached identity holds the same values
    ``np.eye`` would build, and accumulating ``Qᵀ`` directly (swap the
    indices, keep transition-list order) feeds the subtraction the same
    addends as transposing afterwards — elementwise either way, so the
    bits match.  Raises :class:`numpy.linalg.LinAlgError` on
    singularity; the caller falls back to the scalar path for its
    exact error.
    """
    n = system.n
    index = system.index
    qt = np.zeros((n, n))
    for t in system.transitions:
        si = index.get(t.src)
        di = index.get(t.dst)
        if si is None or di is None:
            continue
        qt[di, si] += t.prob
    return np.linalg.solve(_eye(n) - qt, system.e)


def negative(v: np.ndarray) -> bool:
    """Exactly ``np.any(v < -1e-6)``, the scalar path's validity test.

    NaN entries compare ``False`` under both spellings.  The plain
    Python scan exists because for the tiny vectors that dominate the
    flushes, two ufunc dispatches (compare, reduce) cost more than the
    solve's own arithmetic.
    """
    if v.size <= 64:
        return any(x < -1e-6 for x in v.ravel().tolist())
    return bool(np.any(v < -1e-6))


def group_by_size(systems: Sequence) -> "tuple[dict, List[int]]":
    """Partition systems into dense groups (by ``n``) and sparse solos.

    Returns ``(dense, sparse)`` where ``dense`` maps each size to the
    list of indices into ``systems`` and ``sparse`` lists the indices
    above ``SPARSE_THRESHOLD``.
    """
    from ..stg.markov import SPARSE_THRESHOLD
    dense: dict = {}
    sparse: List[int] = []
    for i, system in enumerate(systems):
        if system.n > SPARSE_THRESHOLD:
            sparse.append(i)
        else:
            dense.setdefault(system.n, []).append(i)
    return dense, sparse

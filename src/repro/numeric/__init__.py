"""Numeric backends for the evaluation hot path.

The paper's Section 2.2 analysis bottoms out in many small absorbing-
chain solves (one per dirty schedule fragment), an activity-weighted
energy sum, and Monte-Carlo walks.  This package supplies two
interchangeable backends behind those primitives:

* ``scalar`` (default) — the classic one-solve-at-a-time path, exactly
  as the scheduler has always run it;
* ``batched`` — collects the absorbing-chain systems queued by one
  candidate and dispatches them as stacked LAPACK solves (grouped by
  size below ``SPARSE_THRESHOLD``), vectorizes the power accumulation,
  and offers a numpy-RNG batched simulator.

The batched backend is gated by the repository's bit-identity
contract: every evaluation output (schedules, visit totals, scores,
power estimates, Pareto fronts) must be byte-identical to the scalar
backend's.  See ``docs/performance.md`` ("Numeric backends") for the
batch points and the one documented deviation (sparse systems are
solved per-system inside a flush, because a block-diagonal assembled
sparse solve reorders eliminations and is *not* per-block
bit-identical).

Backends are installed per process (like the Markov tracer): the
evaluation engine calls :func:`set_backend` in the parent and in every
pool worker's initializer, so deep callees reach the active backend
via :func:`get_backend` without threading it through every signature.
"""

from .backend import (BACKENDS, BATCHED, SCALAR, BatchedBackend,
                      NumericBackend, ScalarBackend, batching_available,
                      get_backend, resolve_backend, set_backend,
                      use_backend)

__all__ = [
    "BACKENDS",
    "BATCHED",
    "SCALAR",
    "BatchedBackend",
    "NumericBackend",
    "ScalarBackend",
    "batching_available",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

"""Vectorized activity-weighted energy accumulation.

Replaces the scalar per-event dict updates in
:func:`repro.power.model.estimate_power` with one grouped reduction per
bucket, while staying bit-identical:

* partial sums come from ``np.cumsum`` — a strictly left-to-right
  running sum, the same float-association order as the scalar ``+=``
  chain (``np.sum``'s pairwise reduction would *not* match);
* buckets are keyed in first-encounter order among positive-weight
  states, so downstream ``sum(dict.values())`` reductions (which are
  insertion-order sensitive) see the same operand order;
* the unknown-node :class:`~repro.errors.PowerError` fires at the same
  event the scalar loop would raise it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..cdfg.ops import OpKind
from ..errors import PowerError


def _running_sum(values: List[float]) -> float:
    """Left-to-right float sum of ``values`` (bit-identical to the
    scalar accumulation chain)."""
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    return float(np.cumsum(np.asarray(values))[-1])


def accumulate_activity(stg, graph, library, visits: Dict[int, float]
                        ) -> Tuple[Dict[str, float], Dict[str, float],
                                   float, float]:
    """Batched replica of the scalar accumulation loop.

    Returns ``(fu_ops, fu_energy, mem_accesses, total_ops)`` exactly as
    the scalar loop in ``estimate_power`` would have left them.
    """
    fu_counts: Dict[str, List[float]] = {}
    fu_energies: Dict[str, List[float]] = {}
    mem: List[float] = []
    ops: List[float] = []
    nodes = graph.nodes
    fu_for = library.fu_for
    for sid, state in stg.states.items():
        weight = visits.get(sid, 0.0)
        if weight <= 0:
            continue
        for op in state.ops:
            count = weight * op.exec_prob
            node = nodes.get(op.node)
            if node is None:
                raise PowerError(
                    f"state {sid} references unknown CDFG node {op.node}")
            if node.kind in (OpKind.LOAD, OpKind.STORE):
                mem.append(count)
                ops.append(count)
                continue
            fu = fu_for(node.kind)
            if fu is None:
                continue  # wiring (joins, const shifts) costs nothing
            fu_counts.setdefault(fu.name, []).append(count)
            fu_energies.setdefault(fu.name, []).append(count * fu.energy)
            ops.append(count)
    fu_ops = {name: _running_sum(vals)
              for name, vals in fu_counts.items()}
    fu_energy = {name: _running_sum(vals)
                 for name, vals in fu_energies.items()}
    return fu_ops, fu_energy, _running_sum(mem), _running_sum(ops)

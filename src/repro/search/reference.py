"""Frozen replica of the pre-strategy-layer monolithic search loop.

This is the differential oracle for the refactor: a literal copy of
``TransformSearch.run`` as it stood before the strategy layer existed,
kept free of telemetry, tracing, streaming and budgets so it can never
drift along with the production harness.  Tests, the ``search-parity``
fuzz oracle and ``benchmarks/bench_search_quality.py`` all assert that
:class:`~repro.search.strategy.GreedyStrategy` through the new harness
reproduces this loop's trajectory byte for byte.

Do not "improve" this module — its value is that it does not change.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..cdfg.regions import Behavior
from ..core.engine import Evaluated, EvaluationEngine
from ..core.objectives import Objective
from ..errors import SearchError
from ..hw import Allocation, Library
from ..rewrite.driver import RewriteDriver
from ..sched.types import BranchProbs, SchedConfig
from ..transforms.base import TransformLibrary

__all__ = ["ReferenceResult", "reference_search"]


@dataclass
class ReferenceResult:
    """What the legacy loop returned, trimmed to the comparable core."""

    best: Evaluated
    initial: Evaluated
    generations: int
    evaluated_count: int
    history: List[float] = field(default_factory=list)


def _select(ranked: List[Evaluated], k: float, size: int,
            rng: random.Random) -> List[Evaluated]:
    size = min(size, len(ranked))
    pool = list(range(len(ranked)))
    chosen: List[Evaluated] = []
    for _ in range(size):
        weights = [math.exp(-k * rank) for rank in pool]
        total = sum(weights)
        r = rng.random() * total
        acc = 0.0
        pick = pool[-1]
        for rank, w in zip(pool, weights):
            acc += w
            if r < acc:
                pick = rank
                break
        pool.remove(pick)
        chosen.append(ranked[pick])
    return chosen


def reference_search(transforms: TransformLibrary, library: Library,
                     allocation: Allocation, objective: Objective,
                     behavior: Behavior, *,
                     sched_config: Optional[SchedConfig] = None,
                     branch_probs: Optional[BranchProbs] = None,
                     config=None,
                     hot_nodes: Optional[Set[int]] = None,
                     engine: Optional[EvaluationEngine] = None
                     ) -> ReferenceResult:
    """Run the legacy Figure-6 loop exactly as it was.

    ``config`` is a :class:`~repro.core.search.SearchConfig`; only the
    fields the legacy loop knew about are honored (strategy, macro and
    budget knobs are ignored by construction).
    """
    from ..core.search import SearchConfig, expand_candidates
    cfg = config or SearchConfig()
    rng = random.Random(cfg.seed)
    driver = RewriteDriver(transforms,
                           incremental=cfg.incremental_enumeration,
                           cache_size=cfg.enum_cache_size)
    owns_engine = engine is None
    if engine is None:
        engine = EvaluationEngine(
            library, allocation, objective, sched_config=sched_config,
            branch_probs=branch_probs, workers=cfg.workers,
            cache_size=cfg.cache_size, incremental=cfg.incremental,
            region_cache_size=cfg.region_cache_size,
            numeric_backend=cfg.numeric_backend)
    try:
        initial = engine.evaluate(behavior)
        if initial.result is None:
            raise SearchError(
                "the input behavior itself cannot be scheduled under "
                "the given allocation")
        fresh_from = max(behavior.graph.nodes, default=-1) + 1
        best = initial
        in_set: List[Evaluated] = [initial]
        history = [initial.score]
        outer = 0
        while outer < cfg.max_outer_iters:
            improved = False
            for _move in range(cfg.max_moves):
                pairs = expand_candidates(
                    transforms,
                    [(seed.behavior, seed.lineage) for seed in in_set],
                    rng,
                    max_per_seed=cfg.max_candidates_per_seed,
                    hot_nodes=hot_nodes, fresh_from=fresh_from,
                    driver=driver)
                if not pairs:
                    break
                generation = engine.evaluate_batch(pairs)
                generation.sort(key=lambda e: e.score)
                if generation[0].score < best.score - 1e-9:
                    best = generation[0]
                    improved = True
                history.append(best.score)
                k = cfg.k0 + cfg.k_step * outer
                in_set = _select(generation, k, cfg.in_set_size, rng)
            outer += 1
            if not improved:
                break
        return ReferenceResult(best=best, initial=initial,
                               generations=outer,
                               evaluated_count=engine.requests,
                               history=history)
    finally:
        if owns_engine:
            engine.close()

"""Portfolio racing: N strategy configs sharing one evaluation engine.

Annealing schedules are brittle — the best ``(k0, k_step, In_set)``
combination differs per circuit, and macro-moves help some inputs and
waste budget on others.  A portfolio races several
:class:`~repro.search.strategy.GreedyStrategy` configurations and lets
the *shared* :class:`~repro.core.engine.EvaluationEngine` make that
nearly free: members constantly rediscover each other's candidates
(commutativity twins, shared prefixes), and every rediscovery is a
cache hit instead of a reschedule.

Arbitration is budget-based and deterministic: each proposal is billed
at what it actually cost (``EvalStats.scheduled`` — cache hits are
free), and the next proposal always comes from the live member with
the lowest spend (ties broken by member index, which yields round-robin
while costs are level).  Member 0 is always the baseline greedy
configuration under the run seed, so a portfolio's trajectory *contains*
the plain greedy trajectory; the other members draw from independent
deterministically-derived RNG streams.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Dict, List, Optional

from ..core.engine import Evaluated
from ..obs.trace import AnyTracer
from .strategy import Expander, GreedyStrategy, Proposal

__all__ = ["PortfolioStrategy", "default_members", "member_rng"]


def member_rng(seed: int, label: str) -> random.Random:
    """The RNG stream of one non-baseline portfolio member.

    Seeded on ``"<seed>:<label>"`` (``random.Random`` hashes string
    seeds deterministically), so streams are independent of each other
    and of the baseline member, and stable across runs and platforms.
    """
    return random.Random(f"{seed}:{label}")


#: Canonical member roster: (label, config overrides, macro depth).
#: ``None`` overrides mean "inherit the run config"; macro depth 1 is
#: plain one-step expansion.  Member 0 must stay the un-overridden
#: baseline — portfolio determinism tests pin its trajectory to greedy.
_ROSTER = (
    ("greedy", {}, 1),
    ("macro", {}, None),          # depth from cfg.macro_depth
    ("explore", {"k0": 0.1, "k_step": 0.2, "in_set_size": 5}, 1),
    ("exploit", {"k0": 0.8, "k_step": 0.8, "in_set_size": 2}, 1),
    ("macro-explore", {"k0": 0.1, "k_step": 0.2}, None),
)


def default_members(cfg, expander_factory: Callable[[int], Expander]
                    ) -> List[GreedyStrategy]:
    """The first ``cfg.portfolio_size`` members of the canonical roster.

    ``expander_factory(depth)`` is the harness hook binding the
    transform library / driver / hot-node focus; depth 1 is the plain
    one-step expander, depth >= 2 appends macro chains.
    """
    size = max(1, cfg.portfolio_size)
    members: List[GreedyStrategy] = []
    for idx in range(min(size, len(_ROSTER))):
        label, overrides, depth = _ROSTER[idx]
        member_cfg = replace(cfg, **overrides) if overrides else cfg
        if depth is None:
            depth = max(2, cfg.macro_depth)
        rng = random.Random(cfg.seed) if idx == 0 \
            else member_rng(cfg.seed, label)
        members.append(GreedyStrategy(
            member_cfg, expander_factory(depth), rng=rng,
            name="portfolio", label=label))
    return members


class PortfolioStrategy:
    """Races member strategies under one shared engine and budget."""

    name = "portfolio"

    def __init__(self, members: List[GreedyStrategy]) -> None:
        if not members:
            raise ValueError("a portfolio needs at least one member")
        self.members = members
        self.best: Optional[Evaluated] = None
        self.history: List[float] = []
        self.spent: List[float] = [0.0] * len(members)
        self.observed = 0

    # -- protocol -------------------------------------------------------
    def start(self, initial: Evaluated) -> None:
        self.best = initial
        self.history = [initial.score]
        self.spent = [0.0] * len(self.members)
        self.observed = 0
        for member in self.members:
            member.start(initial)

    def propose(self, tracer: AnyTracer) -> Optional[Proposal]:
        while True:
            live = [i for i, m in enumerate(self.members) if not m.done]
            if not live:
                return None
            # Lowest spend goes next; index breaks ties (round-robin
            # while members cost the same).
            idx = min(live, key=lambda i: (self.spent[i], i))
            proposal = self.members[idx].propose(tracer)
            if proposal is None:
                continue  # that member just finished; re-arbitrate
            proposal.owner_index = idx
            return proposal

    def observe(self, proposal: Proposal,
                ranked: List[Evaluated]) -> None:
        assert self.best is not None
        member = self.members[proposal.owner_index]
        member.observe(proposal, ranked)
        self.spent[proposal.owner_index] += proposal.cost
        if ranked[0].score < self.best.score - 1e-9:
            self.best = ranked[0]
        self.history.append(self.best.score)
        self.observed += 1

    @property
    def generations(self) -> int:
        """Total generations observed across all members (a portfolio
        has no single outer-iteration counter)."""
        return self.observed

    # -- telemetry ------------------------------------------------------
    def member_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-member scoreboard for ``search.member.*`` metrics."""
        out: Dict[str, Dict[str, float]] = {}
        for i, m in enumerate(self.members):
            label = m.label or f"member{i}"
            out[label] = {
                "spent": self.spent[i],
                "generations": len(m.history) - 1,
                "outer_iters": m.outer,
                "best_score": m.best.score if m.best is not None
                else float("inf"),
            }
        return out

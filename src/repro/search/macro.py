"""Macro-moves: dependent rewrite chains as single search candidates.

A one-rewrite neighborhood cannot cross fitness valleys: a loop
restructuring that only pays off after a follow-up reassociation loses
to a flat move in the very generation it is tried.  A *macro-move*
evaluates the whole dependent chain as one candidate — the chain is
built by following the :class:`~repro.rewrite.driver.RewriteDriver`'s
provenance hooks (each applied rewrite reports its exact dirty set, and
a follow-up is *dependent* when its match sites intersect that dirty
set), and its composed lineage keeps every step replayable.

Chains ride alongside the ordinary one-step expansion: a macro-enabled
expander first runs :func:`repro.core.search.expand_candidates`
(consuming the run RNG exactly as plain greedy does, so macro search
diverges from greedy only through the extra candidates) and then
appends the chains, which are enumerated deterministically — canonical
root order, canonical follow-up order, no RNG.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..cdfg.regions import Behavior
from ..obs.trace import NULL_TRACER, AnyTracer
from ..rewrite.driver import RewriteDriver

__all__ = ["compose_lineage", "expand_macro_chains"]


def compose_lineage(lineage: Tuple[str, ...], steps) -> Tuple[str, ...]:
    """The chain's composed lineage: one ``transform:description``
    entry per step, in application order, appended to the seed's
    lineage — the same per-step entries a one-rewrite-at-a-time search
    would have recorded, so macro-found lineages replay identically."""
    return lineage + tuple(f"{c.transform}:{c.description}"
                           for c in steps)


def expand_macro_chains(driver: RewriteDriver,
                        seeds: Sequence[Tuple[Behavior,
                                              Tuple[str, ...]]], *,
                        depth: int = 2, limit: int = 8,
                        max_branch: int = 2,
                        hot_nodes: Optional[Set[int]] = None,
                        fresh_from: int = 0,
                        tracer: AnyTracer = NULL_TRACER
                        ) -> List[Tuple[Behavior, Tuple[str, ...]]]:
    """Dependent-chain candidates for every seed, as (behavior,
    lineage) pairs.

    Chain roots are the seed's ordinary candidates under the same
    hot-node focus as one-step expansion; each seed contributes at most
    ``limit`` chains of 2..``depth`` rewrites (see
    :meth:`~repro.rewrite.driver.RewriteDriver.chains`).  Duplicates of
    one-step products are possible in principle but cost nothing: the
    evaluation engine's fingerprint cache merges them.
    """
    out: List[Tuple[Behavior, Tuple[str, ...]]] = []
    for behavior, lineage in seeds:
        roots = driver.candidates(behavior)
        if hot_nodes is not None:
            roots = [c for c in roots
                     if c.touches(hot_nodes)
                     or any(s >= fresh_from for s in c.sites)]
        chains = driver.chains(behavior, depth=depth, limit=limit,
                               max_branch=max_branch, roots=roots)
        for child, steps in chains:
            with tracer.span("apply.macro", length=len(steps)) as span:
                span.set(chain=" -> ".join(c.transform for c in steps))
            out.append((child, compose_lineage(lineage, steps)))
    return out

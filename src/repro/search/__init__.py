"""Pluggable search strategies for ``Apply_transforms``.

The strategy layer splits the FACT search into a harness
(:class:`~repro.core.search.TransformSearch` — owns the shared
evaluation engine, caches, streaming, budget and telemetry) and
strategies (this package — decide what to evaluate and what to keep):

* :class:`~repro.search.strategy.GreedyStrategy` — the paper's loop,
  byte-identical to the pre-refactor search under a fixed seed;
* macro-moves (:mod:`repro.search.macro`) — the same loop over a
  neighborhood extended with dependent rewrite *chains*;
* :class:`~repro.search.portfolio.PortfolioStrategy` — several
  configurations racing under one engine with budget arbitration;
* :mod:`repro.search.reference` — the frozen legacy loop, kept as the
  differential oracle.

See ``docs/search.md`` for the protocol and recipes.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SearchError
from .macro import compose_lineage, expand_macro_chains
from .portfolio import PortfolioStrategy, default_members
from .reference import ReferenceResult, reference_search
from .strategy import Expander, GreedyStrategy, Proposal, SearchStrategy

__all__ = [
    "Expander", "GreedyStrategy", "PortfolioStrategy", "Proposal",
    "ReferenceResult", "SearchStrategy", "STRATEGIES",
    "compose_lineage", "default_members", "expand_macro_chains",
    "make_strategy", "reference_search",
]

#: Recognized ``SearchConfig.strategy`` / ``--strategy`` values.
STRATEGIES = ("greedy", "macro", "portfolio")


def make_strategy(cfg, expander_factory: Callable[[int], Expander]):
    """Build the strategy named by ``cfg.strategy``.

    ``expander_factory(depth)`` must return an
    :data:`~repro.search.strategy.Expander` whose one-step expansion is
    shared with plain greedy (depth 1) and which appends macro chains
    of up to ``depth`` rewrites for ``depth >= 2``.
    """
    if cfg.strategy == "greedy":
        return GreedyStrategy(cfg, expander_factory(1))
    if cfg.strategy == "macro":
        return GreedyStrategy(cfg,
                              expander_factory(max(2, cfg.macro_depth)),
                              name="macro")
    if cfg.strategy == "portfolio":
        return PortfolioStrategy(default_members(cfg, expander_factory))
    raise SearchError(
        f"unknown search strategy {cfg.strategy!r} "
        f"(expected one of {', '.join(STRATEGIES)})")

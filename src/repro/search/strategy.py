"""The search-strategy protocol and the greedy reference strategy.

:class:`~repro.core.search.TransformSearch` used to *be* the paper's
Figure-6 loop; it is now a strategy-agnostic harness.  A
:class:`SearchStrategy` decides **which** candidate generations to try
(``propose``) and **what** to keep (``observe``); the harness owns
everything the strategies share — the
:class:`~repro.core.engine.EvaluationEngine` with its memoization
cache, the region-schedule cache, streaming, telemetry and the
evaluation budget.

:class:`GreedyStrategy` is the paper's loop extracted verbatim: under a
fixed seed it consumes the run RNG in exactly the order the monolithic
loop did (``rng.sample`` during expansion only when a seed's candidate
list overflows, then one ``rng.random()`` per ``In_set`` pick), so its
trajectories, histories and Pareto fronts are byte-identical to the
pre-refactor search — enforced by tests, the ``search-parity`` fuzz
oracle and ``benchmarks/bench_search_quality.py``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import (Callable, List, Optional, Protocol, Sequence, Tuple,
                    runtime_checkable)

from ..cdfg.regions import Behavior
from ..core.engine import Evaluated
from ..obs.trace import AnyTracer

__all__ = ["Expander", "GreedyStrategy", "Proposal", "SearchStrategy"]

#: Expansion hook handed to strategies by the harness: maps a list of
#: (behavior, lineage) seeds plus the strategy's RNG to the next
#: ``Behavior_set``.  The harness binds the transform library, rewrite
#: driver, hot-node focus and tracer; the strategy owns the RNG so that
#: seeded trajectories are a property of the strategy alone.
Expander = Callable[[Sequence[Tuple[Behavior, Tuple[str, ...]]],
                     random.Random],
                    List[Tuple[Behavior, Tuple[str, ...]]]]


@dataclass
class Proposal:
    """One generation a strategy wants evaluated.

    ``span`` is the open ``search.generation`` trace span: the strategy
    opens it in :meth:`SearchStrategy.propose` (so expansion's ``apply``
    spans nest under it, exactly like the monolithic loop) and the
    harness closes it via :meth:`close` once the generation has been
    evaluated, observed and recorded.  ``cost`` is filled in by the
    harness before ``observe`` — the number of candidates that actually
    went through the scheduler (``EvalStats.scheduled``), the currency
    of budget arbitration.
    """

    pairs: List[Tuple[Behavior, Tuple[str, ...]]]
    outer: int
    span: object
    member: Optional[str] = None
    cost: float = 0.0
    #: index of the portfolio member that proposed this (0 otherwise)
    owner_index: int = 0

    def close(self) -> None:
        if self.span is not None:
            self.span.__exit__(None, None, None)
            self.span = None


@runtime_checkable
class SearchStrategy(Protocol):
    """What the :class:`~repro.core.search.TransformSearch` harness
    drives.

    The contract is pull-based: the harness repeatedly calls
    :meth:`propose` for the next generation, evaluates it through the
    shared engine, and hands the ranked results back via
    :meth:`observe`.  ``propose`` returning ``None`` ends the run.
    """

    #: strategy name recorded on SearchResult / SearchTelemetry
    name: str
    best: Evaluated
    history: List[float]

    def start(self, initial: Evaluated) -> None:
        """Reset all trajectory state for a fresh run seeded at
        ``initial``."""
        ...

    def propose(self, tracer: AnyTracer) -> Optional[Proposal]:
        """The next generation to evaluate, or ``None`` when done."""
        ...

    def observe(self, proposal: Proposal,
                ranked: List[Evaluated]) -> None:
        """Absorb a generation's results (sorted best-first)."""
        ...

    @property
    def generations(self) -> int:
        """Value for ``SearchResult.generations`` (strategy-defined:
        outer iterations for greedy/macro, observed generations for a
        portfolio)."""
        ...


class GreedyStrategy:
    """The paper's Figure-6 loop as a strategy (the byte-identity
    oracle).

    State machine equivalent of::

        outer = 0
        while outer < max_outer_iters:
            improved = False
            for _move in range(max_moves):
                pairs = expand(in_set)
                if not pairs: break
                ... evaluate, rank, update best, select In_set ...
            outer += 1
            if not improved: break

    ``propose`` walks the loop until it has a non-empty generation (or
    the run is over); ``observe`` performs the best-update, history
    append and annealed ``In_set`` selection.  With ``label`` set (a
    portfolio member) the generation span carries a ``member``
    attribute; standalone greedy emits exactly the spans the monolithic
    loop did.
    """

    def __init__(self, cfg, expander: Expander, *,
                 rng: Optional[random.Random] = None,
                 name: str = "greedy",
                 label: Optional[str] = None) -> None:
        self.cfg = cfg
        self.expander = expander
        self.rng = rng if rng is not None else random.Random(cfg.seed)
        self.name = name
        self.label = label
        self.best: Optional[Evaluated] = None
        self.history: List[float] = []
        self.in_set: List[Evaluated] = []
        self.outer = 0
        self.move = 0
        self.improved = False
        self.done = False

    # -- protocol -------------------------------------------------------
    def start(self, initial: Evaluated) -> None:
        self.best = initial
        self.in_set = [initial]
        self.history = [initial.score]
        self.outer = 0
        self.move = 0
        self.improved = False
        self.done = self.cfg.max_outer_iters <= 0

    def propose(self, tracer: AnyTracer) -> Optional[Proposal]:
        while not self.done:
            if self.move >= self.cfg.max_moves:
                self._end_outer()
                continue
            # The span opens before expansion (apply spans nest inside)
            # and stays open on the Proposal until the harness closes it.
            attrs = {"outer": self.outer}
            if self.label is not None:
                attrs["member"] = self.label
            span = tracer.span("search.generation", **attrs)
            span.__enter__()
            pairs = self.expander(
                [(seed.behavior, seed.lineage) for seed in self.in_set],
                self.rng)
            if not pairs:
                # An empty expansion ends the outer iteration (the
                # monolithic loop's inner `break`); the span is still
                # emitted, as before.
                span.__exit__(None, None, None)
                self._end_outer()
                continue
            return Proposal(pairs=pairs, outer=self.outer, span=span,
                            member=self.label)
        return None

    def observe(self, proposal: Proposal,
                ranked: List[Evaluated]) -> None:
        assert self.best is not None
        if ranked[0].score < self.best.score - 1e-9:
            self.best = ranked[0]
            self.improved = True
        self.history.append(self.best.score)
        k = self.cfg.k0 + self.cfg.k_step * self.outer
        self.in_set = self._select(ranked, k)
        self.move += 1

    @property
    def generations(self) -> int:
        """Outer iterations completed — the monolithic loop's exit
        ``outer``."""
        return self.outer

    # -- internals ------------------------------------------------------
    def _end_outer(self) -> None:
        self.outer += 1
        improved, self.improved = self.improved, False
        self.move = 0
        if not improved or self.outer >= self.cfg.max_outer_iters:
            self.done = True

    def _select(self, ranked: List[Evaluated], k: float
                ) -> List[Evaluated]:
        """Draw the next In_set with probability ∝ e^(−k·rank)."""
        size = min(self.cfg.in_set_size, len(ranked))
        pool = list(range(len(ranked)))
        chosen: List[Evaluated] = []
        for _ in range(size):
            weights = [math.exp(-k * rank) for rank in pool]
            total = sum(weights)
            r = self.rng.random() * total
            acc = 0.0
            pick = pool[-1]
            for rank, w in zip(pool, weights):
                acc += w
                if r < acc:
                    pick = rank
                    break
            pool.remove(pick)
            chosen.append(ranked[pick])
        return chosen

"""Structural netlist export.

Renders a :class:`~repro.synth.area.SynthesizedDesign` as a readable
structural description (Verilog-flavoured pseudo-RTL): functional-unit
instances with their operand multiplexers, the register file, the
memories, and the controller FSM's state/transition summary.  This is
the artifact a downstream user would hand to a real RTL flow; it also
makes binding results inspectable in tests.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..cdfg.ir import Graph
from ..cdfg.ops import FREE_KINDS, OpKind
from ..sched.driver import ScheduleResult
from .area import SynthesizedDesign
from .binding import Binding, FuInstance
from .interconnect import _source_name
from .registers import RegisterAllocation


def netlist_text(design: SynthesizedDesign) -> str:
    """Render the synthesized design as structural pseudo-RTL."""
    result = design.result
    graph = result.behavior.graph
    lines: List[str] = []
    name = result.behavior.name
    ports = []
    for var in result.behavior.inputs:
        ports.append(f"input [31:0] {var}")
    for var in result.behavior.outputs:
        ports.append(f"output [31:0] {var}")
    lines.append(f"module {name} (")
    lines.append("    clk, rst" + ("," if ports else ""))
    lines.append(",\n".join(f"    {p}" for p in ports))
    lines.append(");")
    lines.append("")

    lines.append("  // ---- registers "
                 f"({design.registers.count} x 32b) ----")
    for reg, lifetimes in enumerate(design.registers.registers):
        holds = ", ".join(f"n{lt.node}[{lt.start}:{lt.end}]"
                          for lt in lifetimes)
        lines.append(f"  reg [31:0] r{reg};  // holds {holds}")
    lines.append("")

    lines.append("  // ---- memories ----")
    for arr in sorted(result.behavior.arrays.values(),
                      key=lambda d: d.name):
        lines.append(f"  ram #(.DEPTH({arr.size}), .PORTS({arr.ports})) "
                     f"mem_{arr.name} (.clk(clk));")
    lines.append("")

    lines.append("  // ---- functional units ----")
    for fu_type in sorted(design.binding.instances):
        for inst in design.binding.instances[fu_type]:
            ops = design.binding.ops_on(inst)
            labels = ", ".join(graph.nodes[o].label() for o in ops[:6])
            if len(ops) > 6:
                labels += ", ..."
            safe = inst.name.replace("[", "_").replace("]", "") \
                .replace(":", "_")
            lines.append(f"  {fu_type.split(':')[0]} u_{safe} "
                         f"(.clk(clk));  // executes: {labels}")
            for port, sources in sorted(
                    _port_sources(design, inst).items()):
                if len(sources) > 1:
                    lines.append(
                        f"  //   port {port}: mux"
                        f"{len(sources)} <- {', '.join(sorted(sources))}")
    lines.append("")

    stg = result.stg
    lines.append(f"  // ---- controller: {len(stg)} states, "
                 f"{design.controller.state_bits} state bits, "
                 f"{len(stg.transitions)} transitions ----")
    for sid in stg.state_ids():
        state = stg.states[sid]
        ops = " ".join(f"n{op.node}" for op in state.ops) or "(idle)"
        nexts = ", ".join(
            f"S{t.dst}" + (f" if {t.label}" if t.label else "")
            for t in stg.out_edges(sid))
        lines.append(f"  // S{sid}: {ops} -> {nexts or 'DONE'}")
    lines.append("")
    lines.append(f"  // area: {design.area.total:.1f} "
                 f"(fu {sum(design.area.fu_area.values()):.1f}, "
                 f"reg {design.area.register_area:.1f}, "
                 f"mem {design.area.memory_area:.1f}, "
                 f"mux {design.area.mux_area:.1f}, "
                 f"ctrl {design.area.controller_area:.1f})")
    lines.append("endmodule")
    return "\n".join(lines)


def _port_sources(design: SynthesizedDesign,
                  inst: FuInstance) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for (instance, port), sources in \
            design.interconnect.port_sources.items():
        if instance == inst:
            out[port] = sources
    return out

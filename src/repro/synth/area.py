"""Area reporting for a synthesized design."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..hw import Library
from ..sched.driver import ScheduleResult
from .binding import Binding, bind_functional_units
from .controller import ControllerEstimate, estimate_controller
from .interconnect import InterconnectEstimate, estimate_interconnect
from .registers import RegisterAllocation, allocate_registers

#: Normalized area per mux input.
AREA_PER_MUX_INPUT = 0.08


@dataclass
class AreaReport:
    """Area breakdown in the library's normalized units."""

    fu_area: Dict[str, float] = field(default_factory=dict)
    register_area: float = 0.0
    memory_area: float = 0.0
    mux_area: float = 0.0
    controller_area: float = 0.0

    @property
    def total(self) -> float:
        return (sum(self.fu_area.values()) + self.register_area
                + self.memory_area + self.mux_area
                + self.controller_area)


@dataclass
class SynthesizedDesign:
    """Everything the RTL-level synthesis substrate produces."""

    result: ScheduleResult
    binding: Binding
    registers: RegisterAllocation
    interconnect: InterconnectEstimate
    controller: ControllerEstimate
    area: AreaReport


def synthesize(result: ScheduleResult) -> SynthesizedDesign:
    """Bind, allocate registers, estimate interconnect and controller."""
    binding = bind_functional_units(result)
    registers = allocate_registers(result)
    interconnect = estimate_interconnect(result, binding, registers)
    controller = estimate_controller(result)
    area = _area_report(result, binding, registers, interconnect,
                        controller)
    return SynthesizedDesign(result, binding, registers, interconnect,
                             controller, area)


def total_area(result: ScheduleResult) -> float:
    """Total normalized area of a scheduled design.

    Convenience for consumers that only need the scalar (the Pareto
    explorer's area objective): runs the full synthesis substrate and
    returns ``AreaReport.total``.
    """
    return synthesize(result).area.total


def _area_report(result: ScheduleResult, binding: Binding,
                 registers: RegisterAllocation,
                 interconnect: InterconnectEstimate,
                 controller: ControllerEstimate) -> AreaReport:
    library: Library = result.library
    report = AreaReport()
    for fu_type, instances in binding.instances.items():
        if fu_type.startswith("mem:"):
            report.memory_area += library.memory.area * len(instances)
            continue
        fu = library.fu_types.get(fu_type)
        if fu is None:
            continue
        report.fu_area[fu_type] = fu.area * len(instances)
    report.register_area = registers.count * library.register.area
    report.mux_area = interconnect.mux_inputs * AREA_PER_MUX_INPUT
    report.controller_area = controller.area
    return report

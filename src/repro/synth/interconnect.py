"""Interconnect (multiplexer) estimation.

After binding, each FU instance port sees some number of distinct
sources (registers / other instances / constants); each register sees
some number of distinct writers.  Every source beyond the first implies
a mux input.  The total mux-input count is the paper-era proxy for
interconnect area and wiring energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from ..cdfg.ir import Graph
from ..cdfg.ops import FREE_KINDS, OpKind
from ..sched.driver import ScheduleResult
from .binding import Binding, FuInstance
from .registers import RegisterAllocation


@dataclass
class InterconnectEstimate:
    """Mux requirements of the bound datapath."""

    #: (instance, port) -> distinct data sources feeding it
    port_sources: Dict[Tuple[FuInstance, int], Set[str]] = \
        field(default_factory=dict)
    #: register index -> distinct writers
    register_writers: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def mux_inputs(self) -> int:
        """Total mux inputs (each fan-in beyond one costs an input)."""
        total = 0
        for sources in self.port_sources.values():
            total += max(0, len(sources) - 1)
        for writers in self.register_writers.values():
            total += max(0, len(writers) - 1)
        return total


def _source_name(graph: Graph, nid: int, binding: Binding,
                 registers: RegisterAllocation) -> str:
    """Stable label for the physical source of a value."""
    node = graph.nodes[nid]
    if node.kind is OpKind.CONST:
        return f"const:{node.value}"
    if node.kind is OpKind.INPUT:
        return f"in:{node.var}"
    if node.kind in FREE_KINDS:
        # Joins/copies are wiring; collapse to their (first) producer.
        ports = graph.input_ports(nid)
        if ports:
            return _source_name(graph, ports[min(ports)], binding,
                                registers)
        return f"wire:{nid}"
    reg = registers.register_of.get(nid)
    if reg is not None:
        return f"reg:{reg}"
    if nid in binding.assignment:
        return f"fu:{binding.assignment[nid].name}"
    return f"node:{nid}"


def estimate_interconnect(result: ScheduleResult, binding: Binding,
                          registers: RegisterAllocation
                          ) -> InterconnectEstimate:
    """Count distinct sources per FU port and writers per register."""
    graph = result.behavior.graph
    est = InterconnectEstimate()
    for nid, instance in binding.assignment.items():
        for port, src in graph.input_ports(nid).items():
            key = (instance, port)
            est.port_sources.setdefault(key, set()).add(
                _source_name(graph, src, binding, registers))
    for nid, reg in registers.register_of.items():
        est.register_writers.setdefault(reg, set()).add(
            _source_name(graph, nid, binding, registers)
            if nid not in binding.assignment
            else f"fu:{binding.assignment[nid].name}")
    return est

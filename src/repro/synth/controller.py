"""Controller (FSM) cost estimation.

The controller is a Moore FSM over the STG: ``ceil(log2(#states))``
state bits, one next-state/output logic term per transition, and one
control signal per (state, controlled resource) pair.  Costs are
normalized units compatible with the component library's area scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sched.driver import ScheduleResult

#: Normalized area per FSM state bit (flip-flop + decode share).
AREA_PER_STATE_BIT = 1.0
#: Normalized area per transition term.
AREA_PER_TRANSITION = 0.15
#: Normalized area per state-op control point.
AREA_PER_CONTROL_POINT = 0.05


@dataclass
class ControllerEstimate:
    """FSM size summary."""

    n_states: int
    n_transitions: int
    n_control_points: int

    @property
    def state_bits(self) -> int:
        return max(1, math.ceil(math.log2(max(self.n_states, 2))))

    @property
    def area(self) -> float:
        return (AREA_PER_STATE_BIT * self.state_bits
                + AREA_PER_TRANSITION * self.n_transitions
                + AREA_PER_CONTROL_POINT * self.n_control_points)


def estimate_controller(result: ScheduleResult) -> ControllerEstimate:
    """Estimate the FSM implementing the schedule."""
    stg = result.stg
    control_points = sum(len(state.ops) for state in stg.states.values())
    return ControllerEstimate(
        n_states=len(stg),
        n_transitions=len(stg.transitions),
        n_control_points=control_points,
    )

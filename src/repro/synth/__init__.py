"""RTL-level synthesis substrate.

Stands in for the paper's "synthesized, placed, and routed" flow:
functional-unit binding, left-edge register allocation, mux and
controller estimation, area reporting, and activity-based power
simulation (the IRSIM-CAP substitute).
"""

from .area import AreaReport, SynthesizedDesign, synthesize, total_area
from .binding import Binding, FuInstance, bind_functional_units
from .controller import ControllerEstimate, estimate_controller
from .interconnect import InterconnectEstimate, estimate_interconnect
from .netlist import netlist_text
from .power_sim import SimulatedPower, activity_factor, simulate_power
from .registers import (Lifetime, RegisterAllocation, allocate_registers,
                        linearize_states, value_lifetimes)

__all__ = [
    "AreaReport", "Binding", "ControllerEstimate", "FuInstance",
    "InterconnectEstimate", "Lifetime", "RegisterAllocation",
    "SimulatedPower", "SynthesizedDesign", "activity_factor",
    "allocate_registers", "bind_functional_units", "estimate_controller",
    "estimate_interconnect", "linearize_states", "netlist_text",
    "simulate_power",
    "synthesize", "total_area", "value_lifetimes",
]

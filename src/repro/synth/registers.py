"""Register allocation by the left-edge algorithm.

Values produced in one state and consumed in a later one must live in
registers.  We linearize the STG with a DFS order from the entry (loop
back edges close intervals at the loop's span end — a standard
approximation for cyclic lifetime analysis), build one lifetime interval
per CDFG value, and pack intervals into registers with the classic
left-edge algorithm (Kurdahi & Parker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..cdfg.ir import Graph
from ..cdfg.ops import FREE_KINDS, OpKind
from ..errors import SynthError
from ..sched.driver import ScheduleResult


@dataclass(frozen=True)
class Lifetime:
    """A value's live interval over the linearized state order."""

    node: int
    start: int
    end: int


@dataclass
class RegisterAllocation:
    """Result of lifetime packing.

    ``register_of`` maps a producing CDFG node to its register index;
    ``registers`` lists the lifetimes packed into each register.
    """

    register_of: Dict[int, int] = field(default_factory=dict)
    registers: List[List[Lifetime]] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.registers)


def linearize_states(result: ScheduleResult) -> Dict[int, int]:
    """DFS linear order of STG states (entry first)."""
    order: Dict[int, int] = {}
    stack = [result.stg.entry]
    while stack:
        sid = stack.pop()
        if sid in order:
            continue
        order[sid] = len(order)
        for t in sorted(result.stg.out_edges(sid),
                        key=lambda t: -t.prob):
            stack.append(t.dst)
    return order


def value_lifetimes(result: ScheduleResult) -> List[Lifetime]:
    """Lifetime intervals for every value that crosses a state boundary.

    A value is born at its producer's (earliest) state and dies at its
    last consumer's state.  Values consumed only inside their birth
    state (chained combinationally) need no register and are omitted.
    Values flowing around a loop (consumer ordered before producer)
    live across the whole loop span.
    """
    graph = result.behavior.graph
    order = linearize_states(result)
    birth: Dict[int, int] = {}
    for sid, state in result.stg.states.items():
        pos = order.get(sid)
        if pos is None:
            continue
        for op in state.ops:
            cur = birth.get(op.node)
            if cur is None or pos < cur:
                birth[op.node] = pos
    lifetimes: List[Lifetime] = []
    max_pos = max(order.values(), default=0)
    for nid, start in sorted(birth.items()):
        end = start
        wraps = False
        for dst, _port in graph.data_users(nid):
            dpos = _use_position(graph, dst, birth)
            if dpos is None:
                continue
            if dpos < start:
                wraps = True  # loop-carried: live across the span
            end = max(end, dpos)
        if wraps:
            end = max_pos
        if end > start:
            lifetimes.append(Lifetime(nid, start, end))
    return lifetimes


def _use_position(graph: Graph, dst: int, birth: Dict[int, int],
                  seen: Optional[Set[int]] = None) -> Optional[int]:
    """State position where ``dst`` consumes its inputs.

    Cost-free consumers (joins/copies) forward to their own users;
    cycles through loop-header joins are cut by the visited set.
    """
    if dst in birth:
        return birth[dst]
    if seen is None:
        seen = set()
    if dst in seen:
        return None
    seen.add(dst)
    if graph.nodes[dst].kind in FREE_KINDS \
            or graph.nodes[dst].kind is OpKind.OUTPUT:
        positions = [_use_position(graph, d, birth, seen)
                     for d, _p in graph.data_users(dst)]
        concrete = [p for p in positions if p is not None]
        return max(concrete) if concrete else None
    return None


def allocate_registers(result: ScheduleResult) -> RegisterAllocation:
    """Pack value lifetimes into registers (left-edge algorithm)."""
    lifetimes = sorted(value_lifetimes(result),
                       key=lambda lt: (lt.start, lt.end, lt.node))
    alloc = RegisterAllocation()
    ends: List[int] = []  # current end per register
    for lt in lifetimes:
        placed = False
        for reg, end in enumerate(ends):
            if end < lt.start:
                alloc.registers[reg].append(lt)
                alloc.register_of[lt.node] = reg
                ends[reg] = lt.end
                placed = True
                break
        if not placed:
            alloc.registers.append([lt])
            alloc.register_of[lt.node] = len(ends)
            ends.append(lt.end)
    return alloc

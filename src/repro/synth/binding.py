"""Functional-unit binding: schedule → datapath instances.

Every cost-bearing operation in the STG is assigned to a concrete
functional-unit *instance*.  Operations executing in the same state on
the same FU type must use different instances (unless their execution
probabilities show them predicated mutually exclusive — the scheduler
already guarantees the allocation suffices); across states, instances
are reused.  The binder greedily prefers the instance that has already
executed an operation with a shared input, which keeps operand-mux
sizes down (estimated in :mod:`repro.synth.interconnect`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..cdfg.analysis import GuardAnalysis
from ..cdfg.ir import Graph
from ..cdfg.ops import OpKind
from ..errors import SynthError
from ..hw import Library, memory_resource_name
from ..sched.driver import ScheduleResult
from ..sched.types import ResourceModel


@dataclass(frozen=True)
class FuInstance:
    """One physical functional unit in the datapath."""

    fu_type: str
    index: int

    @property
    def name(self) -> str:
        return f"{self.fu_type}[{self.index}]"


@dataclass
class Binding:
    """Operation → FU instance assignment.

    ``assignment`` maps CDFG node id to its instance; ``instances``
    lists all instances per FU type.  One CDFG operation always binds
    to a single instance, even when it appears in several states
    (kernel/prologue copies reuse the same hardware).
    """

    assignment: Dict[int, FuInstance] = field(default_factory=dict)
    instances: Dict[str, List[FuInstance]] = field(default_factory=dict)

    def instance_of(self, nid: int) -> FuInstance:
        try:
            return self.assignment[nid]
        except KeyError:
            raise SynthError(f"node {nid} is not bound") from None

    def ops_on(self, instance: FuInstance) -> List[int]:
        return sorted(n for n, inst in self.assignment.items()
                      if inst == instance)

    def count(self, fu_type: str) -> int:
        return len(self.instances.get(fu_type, []))


def bind_functional_units(result: ScheduleResult) -> Binding:
    """Bind every scheduled operation to an FU instance.

    Raises:
        SynthError: if some state needs more instances of a type than
            the allocation provides (a scheduler invariant violation).
    """
    graph = result.behavior.graph
    rm = ResourceModel(
        graph, result.library, result.allocation,
        array_ports={name: decl.ports
                     for name, decl in result.behavior.arrays.items()})
    binding = Binding()
    guards = GuardAnalysis(graph)
    # Conflicts: ops co-resident in a state on the same resource,
    # except mutually exclusive predicated pairs (they legally share).
    conflicts: Dict[int, Set[int]] = {}
    op_resource: Dict[int, str] = {}
    for state in result.stg.states.values():
        by_resource: Dict[str, List[int]] = {}
        for op in state.ops:
            resource = rm.resource_of(op.node)
            if resource is None:
                continue
            op_resource[op.node] = resource
            by_resource.setdefault(resource, []).append(op.node)
        for members in by_resource.values():
            for nid in members:
                conflicts.setdefault(nid, set()).update(
                    m for m in members
                    if m != nid
                    and not guards.mutually_exclusive(nid, m))

    # Greedy coloring, mux-aware: prefer an instance already feeding
    # from a shared source.
    for nid in sorted(op_resource):
        resource = op_resource[nid]
        capacity = rm.capacity_of(resource)
        pool = binding.instances.setdefault(resource, [])
        taken = {binding.assignment[c] for c in conflicts.get(nid, ())
                 if c in binding.assignment}
        usable = [inst for inst in pool if inst not in taken]
        chosen: Optional[FuInstance] = None
        if usable:
            chosen = max(usable,
                         key=lambda inst: _shared_sources(
                             graph, nid, binding.ops_on(inst)))
        if chosen is None:
            if len(pool) >= max(capacity, 1):
                raise SynthError(
                    f"state requires more {resource} instances than the "
                    f"allocation provides ({capacity})")
            chosen = FuInstance(resource, len(pool))
            pool.append(chosen)
        binding.assignment[nid] = chosen
    return binding


def _shared_sources(graph: Graph, nid: int, existing_ops: List[int]) -> int:
    mine = set(graph.input_ports(nid).values())
    score = 0
    for other in existing_ops:
        score += len(mine & set(graph.input_ports(other).values()))
    return score

"""Activity-based power simulation — the switch-level substitute.

The paper measures final power with IRSIM-CAP on a transistor netlist
extracted from layout, driven by Gaussian-AR stimuli.  Our substitute
walks the STG with the same kind of stimulus statistics and charges
each executed operation an energy weighted by a *switching activity*
factor derived from the stimulus stream: highly correlated inputs
(AR ρ → 1) toggle fewer bits per operation, so consume less than the
macro-model's nominal per-op energy.

The result is an *energy per execution* and *average power* with the
same structure as :func:`repro.power.model.estimate_power` but obtained
by simulation instead of closed-form expectation — the two are
cross-checked in the test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cdfg.ops import DEFAULT_WIDTH, OpKind
from ..errors import SynthError
from ..hw import Library
from ..power.model import DEFAULT_REG_ACCESSES_PER_OP
from ..profiling.traces import gaussian_ar_sequence
from ..sched.driver import ScheduleResult
from ..stg.simulate import walk_once


def activity_factor(samples, width: int = DEFAULT_WIDTH) -> float:
    """Mean fraction of datapath bits toggling between samples.

    0.5 corresponds to uncorrelated random data (the macro-model's
    nominal condition); temporally correlated streams score lower.
    """
    if len(samples) < 2:
        return 0.5
    mask = (1 << width) - 1
    toggles = 0
    for prev, cur in zip(samples, samples[1:]):
        toggles += bin((prev ^ cur) & mask).count("1")
    return toggles / (width * (len(samples) - 1))


@dataclass
class SimulatedPower:
    """Monte-Carlo power estimate."""

    energy_per_run: float
    mean_length: float
    activity: float
    vdd: float = 5.0
    cycle_time: float = 1.0
    runs: int = 0
    fu_energy: Dict[str, float] = field(default_factory=dict)

    @property
    def power(self) -> float:
        if self.mean_length <= 0:
            raise SynthError("zero simulated schedule length")
        return (self.energy_per_run * self.vdd ** 2
                / (self.mean_length * self.cycle_time))


def simulate_power(result: ScheduleResult, *, runs: int = 200,
                   seed: int = 0, rho: float = 0.9, std: float = 512.0,
                   vdd: float = 5.0, cycle_time: float = 1.0,
                   reg_accesses_per_op: float =
                   DEFAULT_REG_ACCESSES_PER_OP) -> SimulatedPower:
    """Walk the STG ``runs`` times and accumulate switched energy.

    The per-op energy is the library constant scaled by ``2 ×
    activity`` (so activity 0.5 reproduces the nominal constants and
    the closed-form estimate).
    """
    rng = random.Random(seed)
    library: Library = result.library
    graph = result.behavior.graph
    stream = gaussian_ar_sequence(max(runs * 4, 64), std=std, rho=rho,
                                  rng=rng)
    act = activity_factor(stream)
    scale = 2.0 * act
    total_energy = 0.0
    total_cycles = 0
    fu_energy: Dict[str, float] = {}
    for _ in range(runs):
        path = walk_once(result.stg, rng)
        total_cycles += len(path)
        for sid in path:
            for op in result.stg.states[sid].ops:
                if op.exec_prob < 1.0 and rng.random() > op.exec_prob:
                    continue
                node = graph.nodes.get(op.node)
                if node is None:
                    continue
                if node.kind in (OpKind.LOAD, OpKind.STORE):
                    e = library.memory.energy * scale
                    fu_energy["memory"] = fu_energy.get("memory", 0.0) + e
                else:
                    fu = library.fu_for(node.kind)
                    if fu is None:
                        continue
                    e = fu.energy * scale
                    fu_energy[fu.name] = fu_energy.get(fu.name, 0.0) + e
                e += (reg_accesses_per_op * library.register.energy
                      * scale)
                total_energy += e
    total_energy *= (1.0 + library.overhead_factor)
    mean_length = total_cycles / max(runs, 1)
    return SimulatedPower(
        energy_per_run=total_energy / max(runs, 1),
        mean_length=mean_length,
        activity=act,
        vdd=vdd,
        cycle_time=cycle_time,
        runs=runs,
        fu_energy={k: v / max(runs, 1) for k, v in fu_energy.items()},
    )

"""Distributivity, including application *across basic blocks*.

Factoring rewrites ``a·b ± a·c`` into ``a·(b ± c)``.  The paper's key
technique (Example 3, Figure 4) recognizes the pattern even when the
multiplies reach the add/subtract *through join operations*, i.e. from
different basic blocks:

* each join input is an execution *thread*, characterized by the guard
  literals under which that input fires;
* the thread whose operands match the pattern is replaced by the
  factored form, guarded by the condition ``C`` under which the CDFG
  "is isomorphic to Source";
* every other consistent thread keeps a copy of the original root
  operation wired to its operands (the paper's grey fallback edge) —
  so functionality is preserved for *every thread of execution*,
  whether or not the join inputs are mutually exclusive;
* threads whose combined guards are contradictory (mutually exclusive
  inputs) are simply not generated, which is exactly how mutual
  exclusion makes the transformed CDFG compact.

The expansion direction ``a·(b ± c) → a·b ± a·c`` is also offered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..cdfg.analysis import conflicts
from ..cdfg.ir import Graph
from ..cdfg.ops import DISTRIBUTIVE_PAIRS, OpKind
from ..cdfg.regions import Behavior
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import LOCAL, Match
from .base import Transformation
from .cleanup import place_like

_Literals = FrozenSet[Tuple[int, bool]]

#: add-like kinds paired with their mul-like distributing kind.
_FACTOR_PAIRS = {(mul, add) for mul, add in DISTRIBUTIVE_PAIRS}
_MUL_KINDS = {mul for mul, _add in DISTRIBUTIVE_PAIRS}
_ADD_KINDS = {add for _mul, add in DISTRIBUTIVE_PAIRS}


@dataclass(frozen=True)
class Thread:
    """One execution thread reaching an operand position.

    ``value`` is the node whose output flows in; ``literals`` are the
    guard literals under which this thread is live; ``op`` is the
    underlying operation once COPY wrappers are peeled.
    """

    value: int
    op: int
    literals: _Literals


def _header_joins(behavior: Behavior) -> Set[int]:
    return {lv.join for loop in behavior.loops() for lv in loop.loop_vars}


def _peel_copies(g: Graph, nid: int,
                 literals: _Literals) -> Tuple[int, _Literals]:
    """Follow COPY chains, accumulating their guards."""
    seen = set()
    while g.nodes[nid].kind is OpKind.COPY and nid not in seen:
        seen.add(nid)
        literals = literals | frozenset(g.control_inputs(nid))
        nid = g.data_input(nid, 0)
    return nid, literals


def resolve_threads(behavior: Behavior, src: int) -> List[Thread]:
    """Execution threads for an operand, traversing one join level."""
    g = behavior.graph
    headers = _header_joins(behavior)
    base, base_lits = _peel_copies(g, src, frozenset())
    node = g.nodes[base]
    if node.kind is OpKind.JOIN and base not in headers:
        threads = []
        for _port, inp in sorted(g.input_ports(base).items()):
            lits = base_lits | frozenset(g.control_inputs(inp))
            op, lits = _peel_copies(g, inp, lits)
            lits = lits | frozenset(g.control_inputs(op))
            threads.append(Thread(value=inp, op=op, literals=lits))
        return threads
    lits = base_lits | frozenset(g.control_inputs(base))
    return [Thread(value=src, op=base, literals=lits)]


def _peel_visited(g: Graph, nid: int, deps: Set[int]) -> int:
    """Follow a COPY chain like :func:`_peel_copies`, recording every
    visited node in ``deps``."""
    seen = set()
    while g.nodes[nid].kind is OpKind.COPY and nid not in seen:
        seen.add(nid)
        deps.add(nid)
        nid = g.data_input(nid, 0)
    deps.add(nid)
    return nid


def _thread_dep_nodes(behavior: Behavior, src: int) -> Set[int]:
    """Every node :func:`resolve_threads` inspects for one operand, plus
    the operand pairs of mul-kind thread ops (read by the shared-operand
    test)."""
    g = behavior.graph
    deps: Set[int] = {src}
    base = _peel_visited(g, src, deps)
    ops: List[int] = []
    if g.nodes[base].kind is OpKind.JOIN \
            and base not in _header_joins(behavior):
        for _port, inp in sorted(g.input_ports(base).items()):
            deps.add(inp)
            ops.append(_peel_visited(g, inp, deps))
    else:
        ops.append(base)
    for op in ops:
        if g.nodes[op].kind in _MUL_KINDS:
            deps.update(g.input_ports(op).values())
    return deps


@dataclass(frozen=True)
class _Match:
    """A factoring site: root ± with a shared-operand multiply thread."""

    root: int
    left_thread: int   # index into resolve_threads(left operand)
    right_thread: int  # index into resolve_threads(right operand)
    shared: int
    b_operand: int
    c_operand: int
    mul_kind: OpKind


class Distributivity(Transformation):
    """Factor ``a·b ± a·c`` (across joins) and expand ``a·(b ± c)``."""

    name = "distributivity"
    scope = LOCAL

    def match_at(self, behavior: Behavior, analyses: AnalysisManager,
                 nid: int) -> List[Match]:
        out: List[Match] = []
        g = behavior.graph
        node = g.nodes[nid]
        if node.kind in _ADD_KINDS and len(g.input_ports(nid)) == 2 \
                and not g.control_users(nid):
            out.extend(self._factor_matches(behavior, nid))
        if node.kind in _MUL_KINDS and len(g.input_ports(nid)) == 2:
            out.extend(self._expand_matches(behavior, nid))
        return out

    # -- factoring ------------------------------------------------------
    def _factor_matches(self, behavior: Behavior,
                        root: int) -> List[Match]:
        g = behavior.graph
        root_kind = g.nodes[root].kind
        left = resolve_threads(behavior, g.data_input(root, 0))
        right = resolve_threads(behavior, g.data_input(root, 1))
        root_lits = frozenset(g.control_inputs(root))
        out: List[Match] = []
        for i, lt in enumerate(left):
            for j, rt in enumerate(right):
                if conflicts(lt.literals, rt.literals):
                    continue
                match = self._match_threads(g, root, root_kind, i, lt,
                                            j, rt)
                if match is None:
                    continue
                if conflicts(lt.literals | rt.literals, root_lits):
                    continue
                scope = ("across joins" if len(left) > 1 or len(right) > 1
                         else "local")
                out.append(Match(
                    self.name,
                    f"factor {root_kind.value}#{match.root} -> "
                    f"{match.mul_kind.value}(shared#{match.shared}, ...) "
                    f"[{scope}]",
                    (match.root, match.shared),
                    ("factor", match.root, match.left_thread,
                     match.right_thread, match.shared, match.b_operand,
                     match.c_operand, match.mul_kind)))
        return out

    @staticmethod
    def _match_threads(g: Graph, root: int, root_kind: OpKind, i: int,
                       lt: Thread, j: int, rt: Thread
                       ) -> Optional[_Match]:
        lnode = g.nodes[lt.op]
        rnode = g.nodes[rt.op]
        if lnode.kind is not rnode.kind:
            return None
        if (lnode.kind, root_kind) not in _FACTOR_PAIRS:
            return None
        la, lb = g.data_inputs(lt.op)
        ra, rb = g.data_inputs(rt.op)
        for shared, b_op in ((la, lb), (lb, la)):
            for r_shared, c_op in ((ra, rb), (rb, ra)):
                if shared == r_shared:
                    return _Match(root, i, j, shared, b_op, c_op,
                                  lnode.kind)
        return None

    # -- expansion ------------------------------------------------------
    def _expand_matches(self, behavior: Behavior, mul: int) -> List[Match]:
        g = behavior.graph
        mul_kind = g.nodes[mul].kind
        out: List[Match] = []
        for port in (0, 1):
            inner = g.data_input(mul, port)
            inner_node = g.nodes[inner]
            if (mul_kind, inner_node.kind) not in _FACTOR_PAIRS:
                continue
            if frozenset(g.control_inputs(inner)) \
                    != frozenset(g.control_inputs(mul)):
                continue
            if g.control_users(inner):
                continue
            out.append(Match(
                self.name,
                f"expand {mul_kind.value}#{mul} over "
                f"{inner_node.kind.value}",
                (mul,), ("expand", mul, port)))
        return out

    def apply(self, behavior: Behavior, match: Match) -> None:
        g = behavior.graph
        if match.params[0] == "factor":
            (_, root, i, j, shared, b_op, c_op, mul_kind) = match.params
            _apply_factoring(behavior,
                             _Match(root, i, j, shared, b_op, c_op,
                                    mul_kind))
            return
        _, mul, port = match.params
        inner = g.data_input(mul, port)
        a = g.data_input(mul, 1 - port)
        x, y = g.data_inputs(inner)
        mul_kind = g.nodes[mul].kind
        add_kind = g.nodes[inner].kind
        guards = list(g.control_inputs(mul))

        def new_op(kind: OpKind, l: int, r: int) -> int:
            nid = g.add_node(kind)
            g.set_data_edge(l, nid, 0)
            g.set_data_edge(r, nid, 1)
            for cond, pol in guards:
                g.add_control_edge(cond, nid, pol)
            place_like(behavior, nid, mul)
            return nid

        left = new_op(mul_kind, a, x)
        right = new_op(mul_kind, a, y)
        g.replace_uses(mul, new_op(add_kind, left, right))

    # Factoring reads the root plus every node the thread resolution
    # visits (copies, joins, join inputs, peeled ops) and the operand
    # pairs of mul-kind thread ops; expansion reads the mul and the
    # inner add.
    def dependencies(self, behavior: Behavior, match: Match) -> frozenset:
        g = behavior.graph
        deps = set(match.footprint)
        if match.params[0] == "expand":
            _, mul, port = match.params
            if mul in g.nodes:
                deps.update(g.input_ports(mul).values())
            return frozenset(deps)
        root = match.params[1]
        if root not in g.nodes:
            return frozenset(deps)
        for port in (0, 1):
            deps |= _thread_dep_nodes(behavior, g.data_input(root, port))
        return frozenset(deps)

    def rescan_roots(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty: Set[int]) -> Set[int]:
        """Dirty nodes plus every data user reachable by climbing
        through COPY/JOIN/mul-kind nodes (the thread resolution can see
        a touched node from that far up)."""
        g = behavior.graph
        climb = {OpKind.COPY, OpKind.JOIN} | _MUL_KINDS
        roots = {n for n in dirty if n in g.nodes}
        frontier = list(roots)
        visited = set(frontier)
        while frontier:
            cur = frontier.pop()
            for dst, _ in g.data_users(cur):
                roots.add(dst)
                if dst not in visited and g.nodes[dst].kind in climb:
                    visited.add(dst)
                    frontier.append(dst)
        return roots


def _apply_factoring(behavior: Behavior, match: _Match) -> None:
    """Rewrite the root, enumerating every consistent thread combo."""
    g = behavior.graph
    root = match.root
    root_kind = g.nodes[root].kind
    root_lits = frozenset(g.control_inputs(root))
    left = resolve_threads(behavior, g.data_input(root, 0))
    right = resolve_threads(behavior, g.data_input(root, 1))

    def new_op(kind: OpKind, l: int, r: int, lits: _Literals) -> int:
        nid = g.add_node(kind)
        g.set_data_edge(l, nid, 0)
        g.set_data_edge(r, nid, 1)
        for cond, pol in sorted(lits):
            g.add_control_edge(cond, nid, pol)
        place_like(behavior, nid, root)
        return nid

    impls: List[int] = []
    for i, lt in enumerate(left):
        for j, rt in enumerate(right):
            lits = lt.literals | rt.literals | root_lits
            if conflicts(lt.literals, rt.literals) \
                    or conflicts(lt.literals | rt.literals, root_lits):
                continue
            if i == match.left_thread and j == match.right_thread:
                # The matched thread: a·(b ± c).
                inner = new_op(root_kind, match.b_operand,
                               match.c_operand, lits)
                impls.append(new_op(match.mul_kind, match.shared, inner,
                                    lits))
            else:
                # Fallback thread: original operation on this combo's
                # operands (the paper's grey edge).
                impls.append(new_op(root_kind, lt.value, rt.value, lits))
    if not impls:
        return
    if len(impls) == 1:
        g.replace_uses(root, impls[0])
        return
    join = g.add_node(OpKind.JOIN, name=f"dist{root}")
    for port, impl in enumerate(impls):
        g.set_data_edge(impl, join, port)
    place_like(behavior, join, root)
    g.replace_uses(root, join)

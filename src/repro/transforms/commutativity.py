"""Commutativity: operand swapping.

Two families:

* swap operands of a commutative operation (``a+b → b+a``) — a
  canonicalizing move that exposes other transformations (e.g. makes
  the shared operand of a distributivity pattern line up);
* flip a comparison while swapping operands (``a < b → b > a``) —
  useful when the library prices comparator directions differently or
  when a comparator output feeds inverted guards.
"""

from __future__ import annotations

from typing import List, Set

from ..cdfg.ops import SWAPPED_COMPARISON, is_commutative
from ..cdfg.regions import Behavior
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import LOCAL, Match
from .base import Transformation


class Commutativity(Transformation):
    """Swap the operands of binary operations."""

    name = "commutativity"
    scope = LOCAL

    def match_at(self, behavior: Behavior, analyses: AnalysisManager,
                 nid: int) -> List[Match]:
        g = behavior.graph
        node = g.nodes[nid]
        if len(g.input_ports(nid)) != 2:
            return []
        if is_commutative(node.kind):
            return [Match(self.name, f"swap {node.kind.value}#{nid}",
                          (nid,), ("swap", nid))]
        if node.kind in SWAPPED_COMPARISON \
                and SWAPPED_COMPARISON[node.kind] is not node.kind:
            flipped = SWAPPED_COMPARISON[node.kind]
            return [Match(self.name,
                          f"flip {node.kind.value}#{nid} -> {flipped.value}",
                          (nid,), ("flip", nid))]
        return []

    def apply(self, behavior: Behavior, match: Match) -> None:
        op, nid = match.params
        _swap_operands(behavior, nid)
        if op == "flip":
            g = behavior.graph
            g.set_kind(nid, SWAPPED_COMPARISON[g.nodes[nid].kind])

    # The predicate reads only the node's own kind and port count.
    def dependencies(self, behavior: Behavior, match: Match) -> frozenset:
        return frozenset(match.footprint)

    def rescan_roots(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty: Set[int]) -> Set[int]:
        return set(dirty)


def _swap_operands(behavior: Behavior, nid: int) -> None:
    g = behavior.graph
    a = g.data_input(nid, 0)
    b = g.data_input(nid, 1)
    g.set_data_edge(b, nid, 0)
    g.set_data_edge(a, nid, 1)

"""Commutativity: operand swapping.

Two families:

* swap operands of a commutative operation (``a+b → b+a``) — a
  canonicalizing move that exposes other transformations (e.g. makes
  the shared operand of a distributivity pattern line up);
* flip a comparison while swapping operands (``a < b → b > a``) —
  useful when the library prices comparator directions differently or
  when a comparator output feeds inverted guards.
"""

from __future__ import annotations

from typing import List

from ..cdfg.ops import OpKind, SWAPPED_COMPARISON, is_commutative
from ..cdfg.regions import Behavior
from .base import Candidate, Transformation


class Commutativity(Transformation):
    """Swap the operands of binary operations."""

    name = "commutativity"

    def find(self, behavior: Behavior) -> List[Candidate]:
        g = behavior.graph
        out: List[Candidate] = []
        for nid in g.node_ids():
            node = g.nodes[nid]
            if len(g.input_ports(nid)) != 2:
                continue
            if is_commutative(node.kind):
                out.append(self._swap_candidate(nid, node.kind.value))
            elif node.kind in SWAPPED_COMPARISON \
                    and SWAPPED_COMPARISON[node.kind] is not node.kind:
                out.append(self._flip_candidate(nid, node.kind))
        return out

    def _swap_candidate(self, nid: int, label: str) -> Candidate:
        def mutate(b: Behavior) -> None:
            _swap_operands(b, nid)

        return Candidate(self.name, f"swap {label}#{nid}", mutate,
                         sites=(nid,))

    def _flip_candidate(self, nid: int, kind: OpKind) -> Candidate:
        flipped = SWAPPED_COMPARISON[kind]

        def mutate(b: Behavior) -> None:
            _swap_operands(b, nid)
            b.graph.nodes[nid].kind = flipped

        return Candidate(self.name,
                         f"flip {kind.value}#{nid} -> {flipped.value}",
                         mutate, sites=(nid,))


def _swap_operands(behavior: Behavior, nid: int) -> None:
    g = behavior.graph
    a = g.data_input(nid, 0)
    b = g.data_input(nid, 1)
    g.set_data_edge(b, nid, 0)
    g.set_data_edge(a, nid, 1)

"""Transformation framework.

A :class:`Transformation` is a :class:`~repro.rewrite.pattern
.RewritePattern`: it enumerates picklable :class:`~repro.rewrite.pattern
.Match` records on a behavior, and ``apply`` replays a match on a fresh
copy.  Applying never mutates the input: the behavior is deep-copied
(node ids are stable across copies), mutated, run through dead-code
elimination and duplicate merging, and re-validated.  This is the
contract the FACT search loop (paper Figure 6) relies on: candidates
from one generation can be applied independently to produce the next
``Behavior_set``.

:class:`Candidate` survives as a thin adapter over a pattern/match pair
for backward compatibility (and for legacy user transformations that
still override ``find()`` with closure-based mutators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, FrozenSet, Iterable, List, Optional, Sequence,
                    Tuple)

from ..cdfg.ir import _digest
from ..cdfg.regions import Behavior, BlockRegion, LoopRegion
from ..cdfg.validate import validate_behavior
from ..errors import TransformError
from ..rewrite.pattern import Match, RewritePattern
from .cleanup import dead_code_elimination


@dataclass
class Candidate:
    """One applicable transformation instance.

    Pattern-produced candidates carry ``pattern``/``match`` and no
    closure; legacy candidates carry a ``mutate`` closure.  Exactly one
    of the two must be set.

    Attributes:
        transform: name of the transformation that produced it.
        description: human-readable site description ("fold add #12").
        mutate: legacy closure mutating a *copy* of the behavior.
        sites: CDFG node ids the rewrite touches; the FACT driver uses
            them to focus the search on hot STG blocks (Section 4.1).
            Mandatory for pattern candidates (it is the match
            footprint); a candidate with no sites never matches a hot
            set.
        pattern: the producing :class:`RewritePattern`, when match-based.
        match: the :class:`Match` this candidate adapts, when match-based.
    """

    transform: str
    description: str
    mutate: Optional[Callable[[Behavior], None]] = None
    sites: Tuple[int, ...] = ()
    pattern: Optional[RewritePattern] = None
    match: Optional[Match] = None

    @classmethod
    def from_match(cls, pattern: RewritePattern,
                   match: Match) -> "Candidate":
        return cls(transform=match.pattern, description=match.description,
                   mutate=None, sites=match.footprint, pattern=pattern,
                   match=match)

    def touches(self, hot: Iterable[int]) -> bool:
        """True if any declared site lies in ``hot``.

        A candidate with an empty ``sites`` tuple matches *no* hot set:
        the old permissive default ("unknown sites match anything")
        silently defeated hot-block focusing for any transform that
        forgot to report sites.
        """
        if not self.sites:
            return False
        hot_set = hot if isinstance(hot, (set, frozenset)) else set(hot)
        return any(s in hot_set for s in self.sites)

    @property
    def fingerprint(self) -> str:
        """Stable content hash (match fingerprint when available)."""
        if self.match is not None:
            return self.match.fingerprint
        payload = repr((self.transform, self.description,
                        tuple(sorted(self.sites))))
        return _digest(payload.encode()).hexdigest()

    @property
    def sort_key(self) -> Tuple[str, Tuple[int, ...], str]:
        """Canonical enumeration order: (transform, sorted sites,
        fingerprint)."""
        return (self.transform, tuple(sorted(self.sites)), self.fingerprint)

    def _mutate_into(self, out: Behavior) -> None:
        if self.match is not None:
            assert self.pattern is not None
            self.pattern.apply(out, self.match)
        elif self.mutate is not None:
            self.mutate(out)
        else:
            raise TransformError(
                f"candidate {self.description!r} has neither a match nor "
                f"a mutate closure")

    def apply(self, behavior: Behavior, validate: bool = True,
              hygiene: bool = True) -> Behavior:
        """Apply to a fresh copy of ``behavior`` and return the result.

        Graph hygiene (dead-code elimination plus common-subexpression
        merging) runs after the rewrite: duplicates created by
        re-association share their subtrees immediately, which is what
        lets repeated tree balancing converge to parallel-prefix-style
        networks instead of exploding the operation count.
        """
        out, _ = apply_candidate(self, behavior, validate=validate,
                                 hygiene=hygiene)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Candidate({self.transform}: {self.description})"


def apply_candidate(candidate: Candidate, behavior: Behavior, *,
                    validate: bool = True, hygiene: bool = True
                    ) -> Tuple[Behavior, FrozenSet[int]]:
    """Apply ``candidate`` to a copy of ``behavior``.

    Returns ``(child, dirty)`` where ``dirty`` is the exact set of node
    ids the rewrite *and* the hygiene passes touched, read off the
    graph's mutation journal (a copy starts with an empty journal).  The
    incremental driver uses ``dirty`` to decide which cached matches
    survive into the child.
    """
    out = behavior.copy()
    mark = out.graph.journal_mark()
    candidate._mutate_into(out)
    dead_code_elimination(out)
    if hygiene:
        from .cse import merge_duplicates_inplace
        merge_duplicates_inplace(out)
        dead_code_elimination(out)
    if validate:
        validate_behavior(out)
    return out, frozenset(out.graph.touched_since(mark))


class Transformation(RewritePattern):
    """A family of behavior-preserving rewrites.

    New-style subclasses implement the :class:`RewritePattern` API
    (``match``/``match_at`` + ``apply``); the inherited :meth:`find`
    adapts matches into :class:`Candidate` objects.  Legacy subclasses
    may instead override :meth:`find` directly and keep producing
    closure-based candidates — the driver detects the difference and
    falls back to a (memoized) full ``find`` scan for them.
    """

    #: Short identifier used in reports and search logs.
    name: str = "base"

    def find(self, behavior: Behavior) -> List[Candidate]:
        """Enumerate applicable candidates on ``behavior``."""
        from ..rewrite.analyses import AnalysisManager
        analyses = AnalysisManager(behavior)
        return [Candidate.from_match(self, m)
                for m in self.match(behavior, analyses)]


@dataclass
class TransformLibrary:
    """The library handed to ``Apply_transforms`` (paper Fig. 6).

    The default contents are created by
    :func:`repro.transforms.default_library`; user-defined
    transformations can be appended ("other transformations can easily
    be incorporated within the framework").
    """

    transformations: List[Transformation] = field(default_factory=list)

    def add(self, transformation: Transformation) -> "TransformLibrary":
        self.transformations.append(transformation)
        return self

    def names(self) -> List[str]:
        return [t.name for t in self.transformations]

    def candidates(self, behavior: Behavior,
                   only: Optional[Sequence[str]] = None) -> List[Candidate]:
        """All candidates over the behavior, optionally filtered by name."""
        out: List[Candidate] = []
        for t in self.transformations:
            if only is not None and t.name not in only:
                continue
            out.extend(t.find(behavior))
        return out

"""Transformation framework.

A :class:`Transformation` enumerates *candidates* — concrete applicable
sites — on a behavior.  Applying a candidate never mutates the input:
it deep-copies the behavior (node ids are stable across copies), mutates
the copy, runs dead-code elimination, and re-validates.  This is the
contract the FACT search loop (paper Figure 6) relies on: candidates
from one generation can be applied independently to produce the next
``Behavior_set``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..cdfg.regions import Behavior, BlockRegion, LoopRegion
from ..cdfg.validate import validate_behavior
from ..errors import TransformError
from .cleanup import dead_code_elimination


@dataclass
class Candidate:
    """One applicable transformation instance.

    Attributes:
        transform: name of the transformation that produced it.
        description: human-readable site description ("fold add #12").
        mutate: function mutating a *copy* of the behavior in place.
        sites: CDFG node ids the rewrite touches; the FACT driver uses
            them to focus the search on hot STG blocks (Section 4.1).
    """

    transform: str
    description: str
    mutate: Callable[[Behavior], None]
    sites: Tuple[int, ...] = ()

    def touches(self, hot: Iterable[int]) -> bool:
        """True if any site lies in ``hot`` (or sites are unknown)."""
        if not self.sites:
            return True
        hot_set = set(hot)
        return any(s in hot_set for s in self.sites)

    def apply(self, behavior: Behavior, validate: bool = True,
              hygiene: bool = True) -> Behavior:
        """Apply to a fresh copy of ``behavior`` and return the result.

        Graph hygiene (dead-code elimination plus common-subexpression
        merging) runs after the rewrite: duplicates created by
        re-association share their subtrees immediately, which is what
        lets repeated tree balancing converge to parallel-prefix-style
        networks instead of exploding the operation count.
        """
        out = behavior.copy()
        self.mutate(out)
        dead_code_elimination(out)
        if hygiene:
            from .cse import merge_duplicates_inplace
            merge_duplicates_inplace(out)
            dead_code_elimination(out)
        if validate:
            validate_behavior(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Candidate({self.transform}: {self.description})"


class Transformation(ABC):
    """A family of behavior-preserving rewrites."""

    #: Short identifier used in reports and search logs.
    name: str = "base"

    @abstractmethod
    def find(self, behavior: Behavior) -> List[Candidate]:
        """Enumerate applicable candidates on ``behavior``."""


@dataclass
class TransformLibrary:
    """The library handed to ``Apply_transforms`` (paper Fig. 6).

    The default contents are created by
    :func:`repro.transforms.default_library`; user-defined
    transformations can be appended ("other transformations can easily
    be incorporated within the framework").
    """

    transformations: List[Transformation] = field(default_factory=list)

    def add(self, transformation: Transformation) -> "TransformLibrary":
        self.transformations.append(transformation)
        return self

    def names(self) -> List[str]:
        return [t.name for t in self.transformations]

    def candidates(self, behavior: Behavior,
                   only: Optional[Sequence[str]] = None) -> List[Candidate]:
        """All candidates over the behavior, optionally filtered by name."""
        out: List[Candidate] = []
        for t in self.transformations:
            if only is not None and t.name not in only:
                continue
            out.extend(t.find(behavior))
        return out

"""Graph hygiene shared by all transformations.

* :func:`dead_code_elimination` — remove operations whose results are
  unobservable (no data users, no control users, no side effects);
* :func:`discard_from_regions` — detach a node from whatever region
  owns it;
* :func:`region_of_insertion` — where new nodes created by a rewrite of
  ``site`` should live.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..cdfg.ir import Graph
from ..cdfg.ops import OpKind
from ..cdfg.regions import Behavior, BlockRegion, LoopRegion, Region
from ..errors import TransformError

#: Kinds that are never dead (side effects or interface).
_ANCHORED = {OpKind.STORE, OpKind.OUTPUT, OpKind.INPUT}


def _protected_ids(behavior: Behavior) -> Set[int]:
    """Nodes that must survive DCE regardless of use counts."""
    out: Set[int] = set()
    for loop in behavior.loops():
        out.add(loop.cond)
        for lv in loop.loop_vars:
            out.add(lv.join)
    return out


def dead_code_elimination(behavior: Behavior) -> int:
    """Iteratively remove unobservable operations.

    Returns the number of nodes removed.  Loop conditions, loop-variable
    header joins, stores, and interface nodes are anchored.
    """
    g = behavior.graph
    protected = _protected_ids(behavior)
    removed = 0
    changed = True
    while changed:
        changed = False
        for nid in g.node_ids():
            node = g.nodes[nid]
            if nid in protected or node.kind in _ANCHORED:
                continue
            if g.data_users(nid) or g.control_users(nid):
                continue
            if g.order_succs(nid) and node.kind is OpKind.STORE:
                continue
            # Order edges to later memory ops don't keep a LOAD alive.
            discard_from_regions(behavior, nid)
            g.remove_node(nid)
            removed += 1
            changed = True
    return removed


def discard_from_regions(behavior: Behavior, nid: int) -> None:
    """Remove ``nid`` from whatever region tracks it (if any)."""
    for region in behavior.region.walk():
        if isinstance(region, BlockRegion):
            region.discard(nid)
        elif isinstance(region, LoopRegion):
            if nid in region.cond_nodes:
                region.cond_nodes.remove(nid)
            region.loop_vars = [lv for lv in region.loop_vars
                                if lv.join != nid]


def owner_region(behavior: Behavior, nid: int) -> Optional[Region]:
    """The block or loop (condition section) owning ``nid``."""
    for region in behavior.region.walk():
        if isinstance(region, BlockRegion) and nid in region.nodes:
            return region
        if isinstance(region, LoopRegion):
            if nid in region.cond_nodes:
                return region
            if any(lv.join == nid for lv in region.loop_vars):
                return region
    return None


def place_like(behavior: Behavior, new_id: int, site: int) -> None:
    """Register a freshly-created node in the same region as ``site``.

    New nodes created by rewrites inherit the site's region so the
    region partition stays exact.
    """
    region = owner_region(behavior, site)
    if region is None:
        # Site is a free node (constant/input): the result is free too
        # only for free kinds; anything else must land in some block.
        kind = behavior.graph.nodes[new_id].kind
        if kind in (OpKind.CONST, OpKind.INPUT, OpKind.OUTPUT):
            return
        raise TransformError(
            f"cannot infer a region for new node {new_id} from free "
            f"site {site}")
    if isinstance(region, BlockRegion):
        region.add(new_id)
    elif isinstance(region, LoopRegion):
        if new_id not in region.cond_nodes:
            region.cond_nodes.append(new_id)


def fresh_const(behavior: Behavior, value: int) -> int:
    """A constant node (free), reusing an existing one when possible."""
    g = behavior.graph
    for nid in g.node_ids():
        node = g.nodes[nid]
        if node.kind is OpKind.CONST and node.value == value:
            return nid
    return g.add_node(OpKind.CONST, value=value)

"""Constant-branch elimination.

When a condition node folds to a constant (its data inputs are all
constants), the branch it controls is static: operations guarded on the
matching polarity become unconditional, operations on the dead polarity
are deleted, and joins that lose inputs collapse onto their surviving
thread.  This is the control-flow half of constant propagation and is
what cleans up boundary conditionals exposed by loop unrolling.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..cdfg.ir import Graph
from ..cdfg.ops import OP_INFO, OpKind, evaluate
from ..cdfg.regions import Behavior
from ..errors import TransformError
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import LOCAL, Match
from .base import Transformation
from .cleanup import discard_from_regions


def _constant_condition(g: Graph, nid: int) -> Optional[int]:
    """The condition's constant value, if statically known."""
    node = g.nodes[nid]
    if node.kind is OpKind.CONST:
        return node.value
    info = OP_INFO.get(node.kind)
    if info is None or info.evaluator is None:
        return None
    inputs = g.data_inputs(nid)
    values = []
    for src in inputs:
        if g.nodes[src].kind is not OpKind.CONST:
            return None
        values.append(g.nodes[src].value or 0)
    return evaluate(node.kind, *values)


class BranchElimination(Transformation):
    """Resolve branches whose condition is a compile-time constant."""

    name = "branch_elim"
    scope = LOCAL

    def match_at(self, behavior: Behavior, analyses: AnalysisManager,
                 nid: int) -> List[Match]:
        g = behavior.graph
        if not g.control_users(nid) or nid in analyses.loop_conds:
            return []
        value = _constant_condition(g, nid)
        if value is None:
            return []
        return [Match(self.name, f"resolve cond#{nid} = {bool(value)}",
                      (nid,), (nid, bool(value)))]

    def apply(self, behavior: Behavior, match: Match) -> None:
        cond, value = match.params
        eliminate_branch(behavior, cond, value)

    # The predicate reads the condition node, its control users (the
    # node itself is touched when guard edges change) and its operands'
    # kinds/values.
    def dependencies(self, behavior: Behavior, match: Match) -> frozenset:
        cond = match.params[0]
        g = behavior.graph
        deps = set(match.footprint)
        if cond in g.nodes:
            deps.update(g.input_ports(cond).values())
        return frozenset(deps)

    def rescan_roots(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty: Set[int]) -> Set[int]:
        g = behavior.graph
        roots = {n for n in dirty if n in g.nodes}
        for n in list(roots):
            roots.update(dst for dst, _ in g.data_users(n))
        return roots


def eliminate_branch(behavior: Behavior, cond: int, value: bool) -> None:
    """Resolve every guard on ``cond`` to the constant ``value``.

    Matching-polarity guards are dropped; dead-polarity operations are
    deleted transitively, with joins collapsing onto their surviving
    inputs.

    Raises:
        TransformError: if a live operation would read a dead value
            without an intervening join (an ill-formed guard structure).
    """
    g = behavior.graph
    protected: Set[int] = set()
    for loop in behavior.loops():
        protected.add(loop.cond)
        protected.update(lv.join for lv in loop.loop_vars)
    dead: Set[int] = set()
    for dst, pol in g.control_users(cond):
        if pol == value:
            g.remove_control_edge(cond, dst, pol)
        else:
            dead.add(dst)

    # Fixpoint: deadness propagates through data edges (except into
    # joins, which absorb dead inputs) and through control edges (an op
    # guarded by a dead condition can never fire); joins collapse as
    # their inputs die.
    changed = True
    while changed:
        changed = False
        for nid in sorted(dead):
            for user, _port in g.data_users(nid):
                if user not in dead \
                        and g.nodes[user].kind is not OpKind.JOIN:
                    dead.add(user)
                    changed = True
            for user, _pol in g.control_users(nid):
                if user not in dead:
                    dead.add(user)
                    changed = True
        if dead & protected:
            raise TransformError(
                "branch elimination would delete loop structure "
                "(condition or header join); site is not eliminable")
        for nid in g.node_ids():
            node = g.nodes[nid]
            if node.kind is not OpKind.JOIN or nid in dead:
                continue
            if nid in protected:
                if any(src in dead
                       for src in g.input_ports(nid).values()):
                    raise TransformError(
                        "branch elimination reaches a loop header join")
                continue
            ports = g.input_ports(nid)
            survivors = [src for _p, src in sorted(ports.items())
                         if src not in dead]
            if len(survivors) == len(ports):
                continue
            changed = True
            if not survivors:
                dead.add(nid)
            elif len(survivors) == 1:
                g.replace_uses(nid, survivors[0])
                dead.add(nid)
            else:
                for port in list(ports):
                    g.remove_data_edge(nid, port)
                for port, src in enumerate(survivors):
                    g.set_data_edge(src, nid, port)

    # Delete the dead set.
    for nid in sorted(dead):
        if nid not in g:
            continue
        for user, _port in g.data_users(nid):
            if user not in dead and user in g \
                    and g.nodes[user].kind is not OpKind.JOIN:
                raise TransformError(
                    f"live node {user} reads dead node {nid}; "
                    f"ill-formed guards")
        discard_from_regions(behavior, nid)
        g.remove_node(nid)

"""Speculative unrolling of data-dependent loops.

The paper's scheduler performs "implicit loop unrolling": operations of
iteration *i+1* begin before iteration *i*'s loop condition resolves.
This transformation makes one step of that explicit on the CDFG, for
``while`` loops whose trip count is unknown:

* the body is cloned once, reading the first copy's results;
* the loop condition is also cloned (``cond₂`` — would a second
  iteration run?);
* *pure* cloned operations execute **speculatively** (unguarded) — their
  results are simply discarded when ``cond₂`` is false;
* memory accesses in the clone stay guarded by ``cond₂`` (stores are
  side effects, loads can fault);
* each loop-carried variable merges through a join selecting the second
  copy's value when ``cond₂`` held and the first copy's otherwise.

One pass of the unrolled loop advances up to two iterations, so with
enough functional units the iteration rate doubles — e.g. GCD retires
two subtractive steps per cycle.  Static op-count/height metrics rate
the clone as pure overhead, which is exactly why the schedule-blind
Flamel baseline never applies it (paper Table 2's GCD row, where FACT
pulls ahead of Flamel).

Estimation bookkeeping: the loop condition gets *weight* 2 (each check
now advances two iterations) and ``cond₂`` aliases the original
condition's profile (the iteration process is memoryless).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..cdfg.ir import Graph
from ..cdfg.ops import FREE_KINDS, OpKind
from ..cdfg.regions import Behavior, BlockRegion, LoopRegion, SeqRegion
from ..errors import TransformError
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import GLOBAL, Match
from .base import Transformation

#: Kinds that may not be executed speculatively in the cloned copy.
_GUARDED_KINDS = {OpKind.LOAD, OpKind.STORE}
#: Kinds that disqualify a loop entirely (trapping ops cannot even be
#: guarded cheaply, and cond sections must be pure to clone).
_TRAPPING = {OpKind.DIV, OpKind.MOD}
#: Bodies beyond this size are never worth doubling under a fixed
#: allocation; skipping them keeps the search space sane.
MAX_BODY_OPS = 48


def _flat_body_blocks(loop: LoopRegion) -> Optional[List[BlockRegion]]:
    blocks: List[BlockRegion] = []
    for region in loop.body.walk():
        if isinstance(region, LoopRegion):
            return None
        if isinstance(region, BlockRegion):
            blocks.append(region)
    return blocks


def _eligible(behavior: Behavior, loop: LoopRegion) -> bool:
    g = behavior.graph
    if _flat_body_blocks(loop) is None:
        return False
    if loop.cond not in loop.cond_nodes:
        return False  # bare-join condition: nothing to clone
    for nid in loop.cond_nodes:
        if g.nodes[nid].kind in _GUARDED_KINDS | _TRAPPING:
            return False
    body_ids = set()
    for block in _flat_body_blocks(loop) or []:
        body_ids |= set(block.nodes)
    if len(body_ids) + len(loop.cond_nodes) > MAX_BODY_OPS:
        return False
    for nid in body_ids:
        if g.nodes[nid].kind in _TRAPPING:
            return False
    for lv in loop.loop_vars:
        if g.data_input(lv.join, 1) == lv.join:
            return False  # self-latched variable
    return True


class SpeculativeUnrolling(Transformation):
    """Unroll data-dependent loops by 2, speculating the second copy."""

    name = "spec_unroll"
    scope = GLOBAL

    def match(self, behavior: Behavior,
              analyses: AnalysisManager) -> List[Match]:
        out: List[Match] = []
        for loop in analyses.loops:
            out.extend(self._loop_matches(behavior, loop))
        return out

    def _loop_matches(self, behavior: Behavior,
                      loop: LoopRegion) -> List[Match]:
        if not _eligible(behavior, loop):
            return []
        sites = tuple(sorted(loop.node_ids()))
        return [Match(self.name, f"speculatively unroll {loop.name}",
                      sites, (loop.name,))]

    def match_scoped(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty) -> List[Match]:
        out: List[Match] = []
        for loop in analyses.loops_touching(dirty):
            out.extend(self._loop_matches(behavior, loop))
        return out

    def apply(self, behavior: Behavior, match: Match) -> None:
        speculative_unroll(behavior, match.params[0])

    def domain(self, behavior: Behavior,
               analyses: AnalysisManager) -> Optional[FrozenSet[int]]:
        # Eligibility reads only loop-member kinds, cond sections and
        # header-join wiring; rewrites outside the loops cannot change
        # the match set while the structure key holds.
        return analyses.loop_nodes


def speculative_unroll(behavior: Behavior, loop_name: str) -> None:
    """Apply the transformation to the named loop, in place."""
    loop = behavior.loop(loop_name)
    if not _eligible(behavior, loop):
        raise TransformError(
            f"loop {loop_name} is not eligible for speculative "
            f"unrolling")
    g = behavior.graph
    blocks = _flat_body_blocks(loop)
    assert blocks is not None
    body_ids = sorted(set().union(*[set(b.nodes) for b in blocks])
                      if blocks else set())
    target = blocks[-1] if blocks else BlockRegion()
    if not blocks:
        loop.body = SeqRegion([target])
    updates: Dict[int, int] = {lv.join: g.data_input(lv.join, 1)
                               for lv in loop.loop_vars}
    env: Dict[int, int] = {}

    def remap(src: int) -> int:
        if src in env:
            return env[src]
        if src in updates:  # header join -> value after copy 1
            return updates[src]
        return src

    def clone(nid: int, extra_guard: Optional[int]) -> int:
        node = g.nodes[nid]
        new = g.add_node(node.kind, name=node.name, value=node.value,
                         var=node.var, array=node.array)
        for port, src in g.input_ports(nid).items():
            g.set_data_edge(remap(src), new, port)
        for cond, pol in g.control_inputs(nid):
            g.add_control_edge(remap(cond), new, pol)
        if extra_guard is not None:
            g.add_control_edge(extra_guard, new, True)
        env[nid] = new
        target.add(new)
        return new

    # 1. Clone the condition section: "would a second iteration run?".
    for nid in g.topo_order(loop.cond_nodes):
        clone(nid, extra_guard=None)
    cond2 = env[loop.cond]

    # 2. Clone the body.  Pure ops run speculatively; memory accesses
    #    stay guarded by cond2 and serialize after copy 1's accesses.
    last_access: Dict[str, List[int]] = {}
    for nid in body_ids:
        node = g.nodes[nid]
        if node.kind in (OpKind.LOAD, OpKind.STORE):
            last_access.setdefault(node.array or "", []).append(nid)
    for nid in g.topo_order(body_ids):
        node = g.nodes[nid]
        guard = cond2 if node.kind in _GUARDED_KINDS else None
        new = clone(nid, extra_guard=guard)
        for pred in g.order_preds(nid):
            if pred in env:
                g.add_order_edge(env[pred], new)
        if node.kind in (OpKind.LOAD, OpKind.STORE):
            for prev in last_access.get(node.array or "", []):
                g.add_order_edge(prev, new)

    # 3. Merge loop-carried values: copy 2's when cond2 held, else
    #    copy 1's.
    for lv in loop.loop_vars:
        v1 = updates[lv.join]
        v2 = remap(v1)
        keep = g.add_node(OpKind.COPY)
        g.set_data_edge(v1, keep, 0)
        g.add_control_edge(cond2, keep, False)
        target.add(keep)
        if (cond2, True) in g.control_inputs(v2):
            taken = v2
        else:
            taken = g.add_node(OpKind.COPY)
            g.set_data_edge(v2, taken, 0)
            g.add_control_edge(cond2, taken, True)
            target.add(taken)
        merge = g.add_node(OpKind.JOIN, name=f"{lv.name}u")
        g.set_data_edge(taken, merge, 0)
        g.set_data_edge(keep, merge, 1)
        target.add(merge)
        g.set_data_edge(merge, lv.join, 1)

    # 4. Estimation bookkeeping.
    behavior.cond_aliases[cond2] = behavior.cond_aliases.get(
        loop.cond, loop.cond)
    behavior.cond_weights[loop.cond] = 2 * behavior.cond_weights.get(
        loop.cond, 1)
    if loop.trip_count is not None:
        loop.trip_count = (loop.trip_count + 1) // 2

"""Explicit loop unrolling for counted loops.

The scheduler already performs *implicit* unrolling (software
pipelining); explicit unrolling additionally exposes cross-iteration
dataflow to the algebraic transformations (e.g. re-association across
what used to be an iteration boundary).

Only loops with a statically-known trip count divisible by the unroll
factor are transformed: each unrolled iteration's operations are cloned
with dataflow renamed through the loop-carried variables, memory
ordering is chained across copies, and the trip count / loop condition
bookkeeping remains exact because the condition section still reads the
header joins (which now advance ``factor`` steps per pass).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..cdfg.ir import Graph
from ..cdfg.ops import OpKind
from ..cdfg.regions import Behavior, BlockRegion, LoopRegion, SeqRegion
from ..errors import TransformError
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import GLOBAL, Match
from .base import Transformation

#: Unroll factors offered per eligible loop.
DEFAULT_FACTORS = (2, 4)

#: Cap on (factor × body size): unrolling far beyond the allocation's
#: width only bloats the search.
MAX_UNROLLED_OPS = 128


class LoopUnrolling(Transformation):
    """Unroll counted loops by small factors."""

    name = "unroll"
    scope = GLOBAL

    def __init__(self, factors=DEFAULT_FACTORS) -> None:
        self.factors = tuple(factors)

    def match(self, behavior: Behavior,
              analyses: AnalysisManager) -> List[Match]:
        out: List[Match] = []
        for loop in analyses.loops:
            out.extend(self._loop_matches(loop))
        return out

    def _loop_matches(self, loop: LoopRegion) -> List[Match]:
        if loop.trip_count is None or loop.trip_count <= 1:
            return []
        if not _body_is_flat(loop):
            return []
        out: List[Match] = []
        sites = tuple(sorted(loop.node_ids()))
        body_size = len(loop.body.node_ids())
        for factor in self.factors:
            if factor < 2 or loop.trip_count % factor != 0:
                continue
            if factor * body_size > MAX_UNROLLED_OPS:
                continue
            out.append(Match(self.name,
                             f"unroll {loop.name} x{factor}",
                             sites, (loop.name, factor)))
        return out

    def match_scoped(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty) -> List[Match]:
        out: List[Match] = []
        for loop in analyses.loops_touching(dirty):
            out.extend(self._loop_matches(loop))
        return out

    def apply(self, behavior: Behavior, match: Match) -> None:
        loop_name, factor = match.params
        unroll_loop(behavior, loop_name, factor)

    def domain(self, behavior: Behavior,
               analyses: AnalysisManager) -> Optional[FrozenSet[int]]:
        # Eligibility depends only on loop membership, trip counts and
        # body nesting — all covered by the structure key plus the loop
        # node set.
        return analyses.loop_nodes


def _body_is_flat(loop: LoopRegion) -> bool:
    """True if the body contains only block regions (no nested loops)."""
    for region in loop.body.walk():
        if isinstance(region, LoopRegion):
            return False
    return True


def _body_blocks(loop: LoopRegion) -> List[BlockRegion]:
    return [r for r in loop.body.walk() if isinstance(r, BlockRegion)]


def unroll_loop(behavior: Behavior, loop_name: str, factor: int) -> None:
    """Unroll the named counted loop in place."""
    loop = behavior.loop(loop_name)
    if loop.trip_count is None or loop.trip_count % factor != 0:
        raise TransformError(
            f"loop {loop_name}: trip count {loop.trip_count} not "
            f"divisible by factor {factor}")
    if not _body_is_flat(loop):
        raise TransformError(
            f"loop {loop_name}: cannot unroll a loop with nested loops")
    g = behavior.graph
    blocks = _body_blocks(loop)
    body_ids = sorted(set().union(*[set(bl.nodes) for bl in blocks])
                      if blocks else set())
    order = g.topo_order(body_ids)

    # Value environment: maps the original producer to the node that
    # plays its role in the *current* copy.  Seeded with the header
    # joins mapping to themselves (copy 0 reads the live loop state).
    env: Dict[int, int] = {}
    # Per loop variable: node currently holding its value.
    var_value: Dict[int, int] = {lv.join: lv.join
                                 for lv in loop.loop_vars}
    updates: Dict[int, int] = {
        lv.join: g.data_input(lv.join, 1) for lv in loop.loop_vars}
    # Memory ordering across copies: last access per array.
    last_access: Dict[str, List[int]] = {}
    for nid in body_ids:
        node = g.nodes[nid]
        if node.kind in (OpKind.LOAD, OpKind.STORE):
            last_access.setdefault(node.array or "", []).append(nid)

    target_block = blocks[-1] if blocks else BlockRegion()
    if not blocks:
        loop.body = SeqRegion([target_block])

    def remap(src: int, copy_env: Dict[int, int]) -> int:
        if src in copy_env:
            return copy_env[src]
        if src in var_value:  # header join -> current value of that var
            return var_value[src]
        return src

    for _copy in range(1, factor):
        # Advance loop-variable values to the previous copy's updates.
        var_value = {join: remap(upd, env)
                     for join, upd in updates.items()}
        new_env: Dict[int, int] = {}
        prev_access = {arr: [remap(a, env) for a in accesses]
                       for arr, accesses in last_access.items()}
        for nid in order:
            node = g.nodes[nid]
            clone = g.add_node(node.kind, name=node.name,
                               value=node.value, var=node.var,
                               array=node.array)
            for port, src in g.input_ports(nid).items():
                g.set_data_edge(remap(src, new_env), clone, port)
            for cond, pol in g.control_inputs(nid):
                g.add_control_edge(remap(cond, new_env), clone, pol)
            for pred in g.order_preds(nid):
                if pred in body_ids:
                    g.add_order_edge(remap(pred, new_env), clone)
            if node.kind in (OpKind.LOAD, OpKind.STORE):
                for prev in prev_access.get(node.array or "", []):
                    g.add_order_edge(prev, clone)
            new_env[nid] = clone
            target_block.add(clone)
        env = new_env

    # Final copy's updates feed the header joins.
    var_value = {join: remap(upd, env) for join, upd in updates.items()}
    for lv in loop.loop_vars:
        g.set_data_edge(var_value[lv.join], lv.join, 1)
    loop.trip_count = loop.trip_count // factor

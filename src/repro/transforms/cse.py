"""Common sub-expression elimination.

Merges structurally identical pure operations: same kind, same input
nodes (order-insensitive for commutative kinds), same guard set, and
owned by the same region (so both execute the same number of times with
the same operand values).  Memory and interface operations are never
merged.

CSE is the partner of tree-height reduction: re-associated prefix
chains (PPS) share their balanced subtrees through it, converging to a
Ladner–Fischer-style parallel prefix network.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cdfg.ir import Graph
from ..cdfg.ops import FREE_KINDS, OpKind, is_commutative
from ..cdfg.regions import Behavior
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import GLOBAL, Match
from .base import Transformation
from .cleanup import owner_region

_EXCLUDED = FREE_KINDS | {OpKind.LOAD, OpKind.STORE, OpKind.SELECT}


def _signature(g: Graph, nid: int):
    node = g.nodes[nid]
    inputs = tuple(g.data_inputs(nid))
    if is_commutative(node.kind):
        inputs = tuple(sorted(inputs))
    guards = frozenset(g.control_inputs(nid))
    return (node.kind, inputs, guards)


class CommonSubexpression(Transformation):
    """Merge duplicate pure operations."""

    name = "cse"
    scope = GLOBAL

    def match(self, behavior: Behavior,
              analyses: AnalysisManager) -> List[Match]:
        g = behavior.graph
        owners = analyses.region_map
        groups: Dict[Tuple, List[int]] = {}
        for nid in g.node_ids():
            node = g.nodes[nid]
            if node.kind in _EXCLUDED:
                continue
            if not g.data_users(nid) and not g.control_users(nid):
                continue
            groups.setdefault(_signature(g, nid), []).append(nid)
        out: List[Match] = []
        for sig, members in sorted(groups.items(),
                                   key=lambda kv: kv[1][0]):
            if len(members) < 2:
                continue
            # Partition by owning region; merge within each region only.
            by_region: Dict[int, List[int]] = {}
            for nid in members:
                by_region.setdefault(id(owners.get(nid)), []).append(nid)
            for group in by_region.values():
                if len(group) >= 2:
                    keep, rest = group[0], group[1:]
                    out.append(Match(
                        self.name,
                        f"merge {len(group)}x {sig[0].value} -> #{keep}",
                        tuple(group), (keep, tuple(rest))))
        return out

    def apply(self, behavior: Behavior, match: Match) -> None:
        keep, rest = match.params
        g = behavior.graph
        if keep not in g:
            return
        for nid in rest:
            if nid in g:
                g.replace_uses(nid, keep)
                for dst, pol in g.control_users(nid):
                    g.remove_control_edge(nid, dst, pol)
                    g.add_control_edge(keep, dst, pol)


def merge_duplicates_inplace(behavior: Behavior,
                             max_rounds: int = 50) -> int:
    """In-place fixpoint CSE (the graph-hygiene entry point).

    Returns the number of merges performed.  Unlike the
    :class:`CommonSubexpression` *transformation*, this mutates the
    given behavior directly and is safe to run after any rewrite.
    """
    g = behavior.graph
    merges = 0
    for _ in range(max_rounds):
        groups: Dict[Tuple, List[int]] = {}
        for nid in g.node_ids():
            node = g.nodes[nid]
            if node.kind in _EXCLUDED:
                continue
            if not g.data_users(nid) and not g.control_users(nid):
                continue  # already merged away / dead: DCE's business
            groups.setdefault(_signature(g, nid), []).append(nid)
        changed = False
        for members in groups.values():
            if len(members) < 2:
                continue
            by_region: Dict[int, List[int]] = {}
            for nid in members:
                region = owner_region(behavior, nid)
                by_region.setdefault(id(region), []).append(nid)
            for group in by_region.values():
                keep = group[0]
                for nid in group[1:]:
                    g.replace_uses(nid, keep)
                    for dst, pol in g.control_users(nid):
                        g.remove_control_edge(nid, dst, pol)
                        g.add_control_edge(keep, dst, pol)
                    changed = True
                    merges += 1
        if not changed:
            break
    return merges


def eliminate_all_cse(behavior: Behavior) -> Behavior:
    """Apply CSE to fixpoint (merging can expose new duplicates)."""
    t = CommonSubexpression()
    current = behavior
    for _ in range(1000):
        candidates = t.find(current)
        if not candidates:
            return current
        for cand in candidates:
            current = cand.apply(current)
    return current

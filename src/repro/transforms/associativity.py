"""Associativity: re-association of operation trees.

Add/sub expressions are flattened into *signed leaves* (``(y1+y2) −
(y3+y4)`` → ``+y1 +y2 −y3 −y4``) and rebuilt in different shapes:

* ``balance`` — a balanced tree, pairing positives with negatives early
  (``(y1−y3) + (y2−y4)``; Example 2's rewrite, which trades adders for
  subtracters to match the free resources);
* ``group`` — sum the positives, sum the negatives, subtract once
  (maximizes adder usage, minimizes subtracters);
* pure associative kinds (MUL, AND, OR, XOR) get a balanced rebuild
  (tree height reduction, the PPS transformation).

All rebuilds are exact under two's-complement (modular) arithmetic.
The search layer decides which shape actually helps the schedule — the
same site can yield several candidates.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from ..cdfg.ir import Graph
from ..cdfg.ops import OpKind, is_associative
from ..cdfg.regions import Behavior
from ..errors import TransformError
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import LOCAL, Match
from .base import Transformation
from .cleanup import fresh_const, place_like

#: Maximum leaves collected per cluster (guards runaway expressions).
MAX_LEAVES = 64

_Guards = FrozenSet[Tuple[int, bool]]


def _guards_of(g: Graph, nid: int) -> _Guards:
    return frozenset(g.control_inputs(nid))


_ASSOC_KINDS = frozenset(k for k in OpKind if is_associative(k))


def _cluster_nodes(g: Graph, nid: int, kinds, guards: _Guards,
                   depth: int = 0) -> Set[int]:
    """Every node the leaf-collection walk visits (internals + leaves)."""
    out = {nid}
    node = g.nodes.get(nid)
    if (node is not None and depth < MAX_LEAVES and node.kind in kinds
            and _guards_of(g, nid) == guards):
        for src in g.data_inputs(nid):
            out |= _cluster_nodes(g, src, kinds, guards, depth + 1)
    return out


def collect_signed_leaves(g: Graph, nid: int, guards: _Guards,
                          sign: int = 1, depth: int = 0
                          ) -> List[Tuple[int, int]]:
    """Flatten an add/sub tree into ``(sign, leaf)`` pairs."""
    node = g.nodes.get(nid)
    if (node is not None and depth < MAX_LEAVES
            and node.kind in (OpKind.ADD, OpKind.SUB)
            and _guards_of(g, nid) == guards):
        left, right = g.data_inputs(nid)
        out = collect_signed_leaves(g, left, guards, sign, depth + 1)
        rsign = sign if node.kind is OpKind.ADD else -sign
        out += collect_signed_leaves(g, right, guards, rsign, depth + 1)
        return out
    return [(sign, nid)]


def collect_assoc_leaves(g: Graph, nid: int, kind: OpKind,
                         guards: _Guards, depth: int = 0) -> List[int]:
    """Flatten a tree of one associative kind into its leaves."""
    node = g.nodes.get(nid)
    if (node is not None and depth < MAX_LEAVES and node.kind is kind
            and _guards_of(g, nid) == guards):
        left, right = g.data_inputs(nid)
        return (collect_assoc_leaves(g, left, kind, guards, depth + 1)
                + collect_assoc_leaves(g, right, kind, guards, depth + 1))
    return [nid]


class Associativity(Transformation):
    """Rebalance and re-associate add/sub and associative-op trees."""

    name = "associativity"
    scope = LOCAL

    def match_at(self, behavior: Behavior, analyses: AnalysisManager,
                 nid: int) -> List[Match]:
        g = behavior.graph
        node = g.nodes[nid]
        guards = _guards_of(g, nid)
        if node.kind in (OpKind.ADD, OpKind.SUB):
            if not self._is_root(g, nid, (OpKind.ADD, OpKind.SUB), guards):
                return []
            leaves = collect_signed_leaves(g, nid, guards)
            if len(leaves) < 3 or len(leaves) > MAX_LEAVES:
                return []
            return [Match(self.name, f"reassociate#{nid} ({style})",
                          (nid,), ("signed", nid, style))
                    for style in ("balance", "group")]
        if is_associative(node.kind):
            if not self._is_root(g, nid, (node.kind,), guards):
                return []
            leaves = collect_assoc_leaves(g, nid, node.kind, guards)
            if len(leaves) < 3 or len(leaves) > MAX_LEAVES:
                return []
            return [Match(self.name, f"balance {node.kind.value}#{nid}",
                          (nid,), ("assoc", nid, node.kind))]
        return []

    @staticmethod
    def _is_root(g: Graph, nid: int, kinds, guards: _Guards) -> bool:
        """A cluster root has some consumer outside the cluster."""
        users = g.data_users(nid)
        if not users:
            return bool(g.control_users(nid))
        for dst, _port in users:
            dnode = g.nodes[dst]
            if dnode.kind not in kinds or _guards_of(g, dst) != guards:
                return True
        return False

    def apply(self, behavior: Behavior, match: Match) -> None:
        g = behavior.graph
        if match.params[0] == "signed":
            _, root, style = match.params
            guards = _guards_of(g, root)
            leaves = collect_signed_leaves(g, root, guards)
            new_root = _build_signed(behavior, root, leaves, guards, style)
            g.replace_uses(root, new_root)
        else:
            _, root, kind = match.params
            guards = _guards_of(g, root)
            leaves = collect_assoc_leaves(g, root, kind, guards)
            new_root = _reduce_balanced(behavior, root, leaves, kind, guards)
            g.replace_uses(root, new_root)

    # The predicate walks the whole cluster (internal ops + leaves) and
    # inspects the root's users for the is-root test.
    def dependencies(self, behavior: Behavior, match: Match) -> frozenset:
        root = match.params[1]
        g = behavior.graph
        deps = set(match.footprint)
        if root not in g.nodes:
            return frozenset(deps)
        deps.update(dst for dst, _ in g.data_users(root))
        guards = _guards_of(g, root)
        if match.params[0] == "signed":
            kinds: Tuple[OpKind, ...] = (OpKind.ADD, OpKind.SUB)
        else:
            kinds = (g.nodes[root].kind,)
        deps.update(_cluster_nodes(g, root, kinds, guards))
        return frozenset(deps)

    def rescan_roots(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty: Set[int]) -> Set[int]:
        """Dirty nodes, their cluster-kind producers, and the upward
        closure through cluster-kind users (a touched leaf can create a
        match at an arbitrarily distant tree root)."""
        g = behavior.graph
        roots = {n for n in dirty if n in g.nodes}
        climb = {OpKind.ADD, OpKind.SUB} | _ASSOC_KINDS
        for n in list(roots):
            roots.update(src for src in g.input_ports(n).values()
                         if g.nodes[src].kind in climb)
        frontier = list(roots)
        visited = set(frontier)
        while frontier:
            cur = frontier.pop()
            for dst, _ in g.data_users(cur):
                if dst in visited:
                    continue
                if g.nodes[dst].kind in climb:
                    visited.add(dst)
                    roots.add(dst)
                    frontier.append(dst)
        return roots


def _new_op(b: Behavior, kind: OpKind, left: int, right: int,
            guards: _Guards, site: int) -> int:
    g = b.graph
    nid = g.add_node(kind)
    g.set_data_edge(left, nid, 0)
    g.set_data_edge(right, nid, 1)
    for cond, pol in guards:
        g.add_control_edge(cond, nid, pol)
    place_like(b, nid, site)
    return nid


def _reduce_balanced(b: Behavior, site: int, items: List[int],
                     kind: OpKind, guards: _Guards) -> int:
    """Pairwise-reduce ``items`` into a balanced tree."""
    if not items:
        raise TransformError("cannot reduce an empty leaf list")
    while len(items) > 1:
        nxt = []
        for i in range(0, len(items) - 1, 2):
            nxt.append(_new_op(b, kind, items[i], items[i + 1], guards,
                               site))
        if len(items) % 2:
            nxt.append(items[-1])
        items = nxt
    return items[0]


def _build_signed(b: Behavior, site: int,
                  leaves: List[Tuple[int, int]], guards: _Guards,
                  style: str) -> int:
    pos = [nid for sign, nid in leaves if sign > 0]
    neg = [nid for sign, nid in leaves if sign < 0]
    if style == "balance":
        # Pair positives with negatives early: SUBs at the leaves.
        terms: List[int] = []
        for p, n in zip(pos, neg):
            terms.append(_new_op(b, OpKind.SUB, p, n, guards, site))
        extra_pos = pos[len(neg):]
        extra_neg = neg[len(pos):]
        terms.extend(extra_pos)
        if not terms:
            terms = [fresh_const(b, 0)]
        result = _reduce_balanced(b, site, terms, OpKind.ADD, guards)
        if extra_neg:
            tail = _reduce_balanced(b, site, extra_neg, OpKind.ADD, guards)
            result = _new_op(b, OpKind.SUB, result, tail, guards, site)
        return result
    if style == "group":
        # Sum positives and negatives separately, subtract once.
        if not pos:
            pos = [fresh_const(b, 0)]
        p_sum = _reduce_balanced(b, site, pos, OpKind.ADD, guards)
        if not neg:
            return p_sum
        n_sum = _reduce_balanced(b, site, neg, OpKind.ADD, guards)
        return _new_op(b, OpKind.SUB, p_sum, n_sum, guards, site)
    raise TransformError(f"unknown re-association style {style!r}")

"""Associativity: re-association of operation trees.

Add/sub expressions are flattened into *signed leaves* (``(y1+y2) −
(y3+y4)`` → ``+y1 +y2 −y3 −y4``) and rebuilt in different shapes:

* ``balance`` — a balanced tree, pairing positives with negatives early
  (``(y1−y3) + (y2−y4)``; Example 2's rewrite, which trades adders for
  subtracters to match the free resources);
* ``group`` — sum the positives, sum the negatives, subtract once
  (maximizes adder usage, minimizes subtracters);
* pure associative kinds (MUL, AND, OR, XOR) get a balanced rebuild
  (tree height reduction, the PPS transformation).

All rebuilds are exact under two's-complement (modular) arithmetic.
The search layer decides which shape actually helps the schedule — the
same site can yield several candidates.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from ..cdfg.ir import Graph
from ..cdfg.ops import OpKind, is_associative
from ..cdfg.regions import Behavior
from ..errors import TransformError
from .base import Candidate, Transformation
from .cleanup import fresh_const, place_like

#: Maximum leaves collected per cluster (guards runaway expressions).
MAX_LEAVES = 64

_Guards = FrozenSet[Tuple[int, bool]]


def _guards_of(g: Graph, nid: int) -> _Guards:
    return frozenset(g.control_inputs(nid))


def collect_signed_leaves(g: Graph, nid: int, guards: _Guards,
                          sign: int = 1, depth: int = 0
                          ) -> List[Tuple[int, int]]:
    """Flatten an add/sub tree into ``(sign, leaf)`` pairs."""
    node = g.nodes.get(nid)
    if (node is not None and depth < MAX_LEAVES
            and node.kind in (OpKind.ADD, OpKind.SUB)
            and _guards_of(g, nid) == guards):
        left, right = g.data_inputs(nid)
        out = collect_signed_leaves(g, left, guards, sign, depth + 1)
        rsign = sign if node.kind is OpKind.ADD else -sign
        out += collect_signed_leaves(g, right, guards, rsign, depth + 1)
        return out
    return [(sign, nid)]


def collect_assoc_leaves(g: Graph, nid: int, kind: OpKind,
                         guards: _Guards, depth: int = 0) -> List[int]:
    """Flatten a tree of one associative kind into its leaves."""
    node = g.nodes.get(nid)
    if (node is not None and depth < MAX_LEAVES and node.kind is kind
            and _guards_of(g, nid) == guards):
        left, right = g.data_inputs(nid)
        return (collect_assoc_leaves(g, left, kind, guards, depth + 1)
                + collect_assoc_leaves(g, right, kind, guards, depth + 1))
    return [nid]


class Associativity(Transformation):
    """Rebalance and re-associate add/sub and associative-op trees."""

    name = "associativity"

    def find(self, behavior: Behavior) -> List[Candidate]:
        g = behavior.graph
        out: List[Candidate] = []
        for nid in g.node_ids():
            node = g.nodes[nid]
            guards = _guards_of(g, nid)
            if node.kind in (OpKind.ADD, OpKind.SUB):
                if not self._is_root(g, nid, (OpKind.ADD, OpKind.SUB),
                                     guards):
                    continue
                leaves = collect_signed_leaves(g, nid, guards)
                if len(leaves) < 3 or len(leaves) > MAX_LEAVES:
                    continue
                for style in ("balance", "group"):
                    out.append(self._signed_candidate(nid, style))
            elif is_associative(node.kind):
                if not self._is_root(g, nid, (node.kind,), guards):
                    continue
                leaves = collect_assoc_leaves(g, nid, node.kind, guards)
                if len(leaves) < 3 or len(leaves) > MAX_LEAVES:
                    continue
                out.append(self._assoc_candidate(nid, node.kind))
        return out

    @staticmethod
    def _is_root(g: Graph, nid: int, kinds, guards: _Guards) -> bool:
        """A cluster root has some consumer outside the cluster."""
        users = g.data_users(nid)
        if not users:
            return bool(g.control_users(nid))
        for dst, _port in users:
            dnode = g.nodes[dst]
            if dnode.kind not in kinds or _guards_of(g, dst) != guards:
                return True
        return False

    # ------------------------------------------------------------------
    def _signed_candidate(self, root: int, style: str) -> Candidate:
        def mutate(b: Behavior) -> None:
            g = b.graph
            guards = _guards_of(g, root)
            leaves = collect_signed_leaves(g, root, guards)
            new_root = _build_signed(b, root, leaves, guards, style)
            g.replace_uses(root, new_root)

        return Candidate(self.name, f"reassociate#{root} ({style})",
                         mutate, sites=(root,))

    def _assoc_candidate(self, root: int, kind: OpKind) -> Candidate:
        def mutate(b: Behavior) -> None:
            g = b.graph
            guards = _guards_of(g, root)
            leaves = collect_assoc_leaves(g, root, kind, guards)
            new_root = _reduce_balanced(b, root, leaves, kind, guards)
            g.replace_uses(root, new_root)

        return Candidate(self.name,
                         f"balance {kind.value}#{root}", mutate,
                         sites=(root,))


def _new_op(b: Behavior, kind: OpKind, left: int, right: int,
            guards: _Guards, site: int) -> int:
    g = b.graph
    nid = g.add_node(kind)
    g.set_data_edge(left, nid, 0)
    g.set_data_edge(right, nid, 1)
    for cond, pol in guards:
        g.add_control_edge(cond, nid, pol)
    place_like(b, nid, site)
    return nid


def _reduce_balanced(b: Behavior, site: int, items: List[int],
                     kind: OpKind, guards: _Guards) -> int:
    """Pairwise-reduce ``items`` into a balanced tree."""
    if not items:
        raise TransformError("cannot reduce an empty leaf list")
    while len(items) > 1:
        nxt = []
        for i in range(0, len(items) - 1, 2):
            nxt.append(_new_op(b, kind, items[i], items[i + 1], guards,
                               site))
        if len(items) % 2:
            nxt.append(items[-1])
        items = nxt
    return items[0]


def _build_signed(b: Behavior, site: int,
                  leaves: List[Tuple[int, int]], guards: _Guards,
                  style: str) -> int:
    pos = [nid for sign, nid in leaves if sign > 0]
    neg = [nid for sign, nid in leaves if sign < 0]
    if style == "balance":
        # Pair positives with negatives early: SUBs at the leaves.
        terms: List[int] = []
        for p, n in zip(pos, neg):
            terms.append(_new_op(b, OpKind.SUB, p, n, guards, site))
        extra_pos = pos[len(neg):]
        extra_neg = neg[len(pos):]
        terms.extend(extra_pos)
        if not terms:
            terms = [fresh_const(b, 0)]
        result = _reduce_balanced(b, site, terms, OpKind.ADD, guards)
        if extra_neg:
            tail = _reduce_balanced(b, site, extra_neg, OpKind.ADD, guards)
            result = _new_op(b, OpKind.SUB, result, tail, guards, site)
        return result
    if style == "group":
        # Sum positives and negatives separately, subtract once.
        if not pos:
            pos = [fresh_const(b, 0)]
        p_sum = _reduce_balanced(b, site, pos, OpKind.ADD, guards)
        if not neg:
            return p_sum
        n_sum = _reduce_balanced(b, site, neg, OpKind.ADD, guards)
        return _new_op(b, OpKind.SUB, p_sum, n_sum, guards, site)
    raise TransformError(f"unknown re-association style {style!r}")

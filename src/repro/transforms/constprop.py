"""Constant propagation and algebraic identity folding.

Two candidate families:

* **fold** — an operation whose data inputs are all constants is
  replaced by its value;
* **identity** — algebraic simplifications with one constant operand
  (``x+0 → x``, ``x*1 → x``, ``x*0 → 0``, ``x-0 → x``, ``x<<0 → x``,
  ``x/1 → x``).

Sites whose result steers control flow (loop conditions, guard sources)
are skipped: rewiring the controller is the scheduler's job, not a
dataflow rewrite's.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..cdfg.ir import Graph
from ..cdfg.ops import OP_INFO, OpKind, evaluate
from ..cdfg.regions import Behavior
from .base import Candidate, Transformation
from .cleanup import discard_from_regions, fresh_const

_FOLDABLE = {k for k, info in OP_INFO.items() if info.evaluator is not None}

#: (kind, const operand port or None for either, const value) -> result
#: "x" means the non-constant operand; "0" means the constant 0.
_IDENTITIES: List[Tuple[OpKind, Optional[int], int, str]] = [
    (OpKind.ADD, None, 0, "x"),
    (OpKind.SUB, 1, 0, "x"),
    (OpKind.MUL, None, 1, "x"),
    (OpKind.MUL, None, 0, "0"),
    (OpKind.DIV, 1, 1, "x"),
    (OpKind.SHL, 1, 0, "x"),
    (OpKind.SHR, 1, 0, "x"),
    (OpKind.BOR, None, 0, "x"),
    (OpKind.BAND, None, 0, "0"),
    (OpKind.BXOR, None, 0, "x"),
]


def _is_control_source(behavior: Behavior, nid: int) -> bool:
    if behavior.graph.control_users(nid):
        return True
    return any(loop.cond == nid for loop in behavior.loops())


class ConstantPropagation(Transformation):
    """Fold constant subexpressions and algebraic identities."""

    name = "constprop"

    def find(self, behavior: Behavior) -> List[Candidate]:
        g = behavior.graph
        out: List[Candidate] = []
        for nid in g.node_ids():
            node = g.nodes[nid]
            if node.kind not in _FOLDABLE:
                continue
            if _is_control_source(behavior, nid):
                continue
            if not g.data_users(nid):
                continue
            inputs = g.data_inputs(nid)
            values = [g.nodes[s].value if g.nodes[s].kind is OpKind.CONST
                      else None for s in inputs]
            if all(v is not None for v in values):
                out.append(self._fold_candidate(nid, node.kind, values))
                continue
            ident = self._match_identity(nid, node.kind, inputs, values)
            if ident is not None:
                out.append(ident)
        return out

    def _fold_candidate(self, nid: int, kind: OpKind,
                        values: List[Optional[int]]) -> Candidate:
        vals = [v for v in values if v is not None]
        result = evaluate(kind, *vals)

        def mutate(b: Behavior) -> None:
            const = fresh_const(b, result)
            b.graph.replace_uses(nid, const)

        return Candidate(self.name,
                         f"fold {kind.value}#{nid} -> {result}", mutate,
                         sites=(nid,))

    def _match_identity(self, nid: int, kind: OpKind, inputs: List[int],
                        values: List[Optional[int]]
                        ) -> Optional[Candidate]:
        for ikind, port, const_val, result in _IDENTITIES:
            if kind is not ikind or len(inputs) != 2:
                continue
            ports = [port] if port is not None else [0, 1]
            for p in ports:
                if values[p] == const_val:
                    other = inputs[1 - p]
                    return self._identity_candidate(nid, kind, other,
                                                    result)
        return None

    def _identity_candidate(self, nid: int, kind: OpKind, other: int,
                            result: str) -> Candidate:
        def mutate(b: Behavior) -> None:
            g = b.graph
            if result == "x":
                g.replace_uses(nid, other)
            else:
                g.replace_uses(nid, fresh_const(b, 0))

        label = "x" if result == "x" else "0"
        return Candidate(self.name,
                         f"identity {kind.value}#{nid} -> {label}", mutate,
                         sites=(nid,))


def fold_all_constants(behavior: Behavior) -> Behavior:
    """Repeatedly fold until fixpoint (used by the Flamel baseline)."""
    t = ConstantPropagation()
    current = behavior
    for _ in range(1000):
        candidates = t.find(current)
        if not candidates:
            return current
        current = candidates[0].apply(current)
    return current

"""Constant propagation and algebraic identity folding.

Two candidate families:

* **fold** — an operation whose data inputs are all constants is
  replaced by its value;
* **identity** — algebraic simplifications with one constant operand
  (``x+0 → x``, ``x*1 → x``, ``x*0 → 0``, ``x-0 → x``, ``x<<0 → x``,
  ``x/1 → x``).

Sites whose result steers control flow (loop conditions, guard sources)
are skipped: rewiring the controller is the scheduler's job, not a
dataflow rewrite's.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..cdfg.ops import OP_INFO, OpKind, evaluate
from ..cdfg.regions import Behavior
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import LOCAL, Match
from .base import Transformation
from .cleanup import fresh_const

_FOLDABLE = {k for k, info in OP_INFO.items() if info.evaluator is not None}

#: (kind, const operand port or None for either, const value) -> result
#: "x" means the non-constant operand; "0" means the constant 0.
_IDENTITIES: List[Tuple[OpKind, Optional[int], int, str]] = [
    (OpKind.ADD, None, 0, "x"),
    (OpKind.SUB, 1, 0, "x"),
    (OpKind.MUL, None, 1, "x"),
    (OpKind.MUL, None, 0, "0"),
    (OpKind.DIV, 1, 1, "x"),
    (OpKind.SHL, 1, 0, "x"),
    (OpKind.SHR, 1, 0, "x"),
    (OpKind.BOR, None, 0, "x"),
    (OpKind.BAND, None, 0, "0"),
    (OpKind.BXOR, None, 0, "x"),
]


def _is_control_source(behavior: Behavior, nid: int) -> bool:
    if behavior.graph.control_users(nid):
        return True
    return any(loop.cond == nid for loop in behavior.loops())


class ConstantPropagation(Transformation):
    """Fold constant subexpressions and algebraic identities."""

    name = "constprop"
    scope = LOCAL

    def match_at(self, behavior: Behavior, analyses: AnalysisManager,
                 nid: int) -> List[Match]:
        g = behavior.graph
        node = g.nodes[nid]
        if node.kind not in _FOLDABLE:
            return []
        if g.control_users(nid) or nid in analyses.loop_conds:
            return []
        if not g.data_users(nid):
            return []
        inputs = g.data_inputs(nid)
        values = [analyses.direct_const(s) for s in inputs]
        if values and all(v is not None for v in values):
            result = evaluate(node.kind, *values)
            return [Match(self.name,
                          f"fold {node.kind.value}#{nid} -> {result}",
                          (nid,), ("fold", nid, result))]
        ident = self._match_identity(nid, node.kind, inputs, values)
        if ident is not None:
            return [ident]
        return []

    def _match_identity(self, nid: int, kind: OpKind, inputs: List[int],
                        values: List[Optional[int]]) -> Optional[Match]:
        for ikind, port, const_val, result in _IDENTITIES:
            if kind is not ikind or len(inputs) != 2:
                continue
            ports = [port] if port is not None else [0, 1]
            for p in ports:
                if values[p] == const_val:
                    other = inputs[1 - p]
                    label = "x" if result == "x" else "0"
                    return Match(
                        self.name,
                        f"identity {kind.value}#{nid} -> {label}",
                        (nid,), ("identity", nid, other, result))
        return None

    def apply(self, behavior: Behavior, match: Match) -> None:
        g = behavior.graph
        if match.params[0] == "fold":
            _, nid, result = match.params
            g.replace_uses(nid, fresh_const(behavior, result))
        else:
            _, nid, other, result = match.params
            if result == "x":
                g.replace_uses(nid, other)
            else:
                g.replace_uses(nid, fresh_const(behavior, 0))

    # The predicate reads the node, its operands' kinds/values, its
    # data users (non-empty check), and its control users / loop-cond
    # status — the latter two are properties of the node itself.
    def dependencies(self, behavior: Behavior, match: Match) -> frozenset:
        nid = match.params[1]
        g = behavior.graph
        deps = set(match.footprint)
        if nid in g.nodes:
            deps.update(g.input_ports(nid).values())
        return frozenset(deps)

    def rescan_roots(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty: Set[int]) -> Set[int]:
        g = behavior.graph
        roots = {n for n in dirty if n in g.nodes}
        for n in list(roots):
            roots.update(dst for dst, _ in g.data_users(n))
        return roots


def fold_all_constants(behavior: Behavior) -> Behavior:
    """Repeatedly fold until fixpoint (used by the Flamel baseline)."""
    t = ConstantPropagation()
    current = behavior
    for _ in range(1000):
        candidates = t.find(current)
        if not candidates:
            return current
        current = candidates[0].apply(current)
    return current

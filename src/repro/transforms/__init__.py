"""The transformation library (paper Section 1).

Supported transformations: commutativity, constant propagation,
associativity (signed re-association and tree height reduction),
distributivity (including across basic blocks, Example 3), code motion
(speculation and loop-invariant hoisting), and loop unrolling — plus
common-subexpression elimination and strength reduction, which the
framework's extensibility clause invites ("other transformations can
easily be incorporated within the framework").
"""

from .associativity import (Associativity, collect_assoc_leaves,
                            collect_signed_leaves)
from .branch_elim import BranchElimination, eliminate_branch
from .base import Candidate, TransformLibrary, Transformation
from .cleanup import dead_code_elimination, discard_from_regions
from .code_motion import (LoopInvariantMotion, Speculation,
                          hoist_out_of_loop, speculate)
from .commutativity import Commutativity
from .constprop import ConstantPropagation, fold_all_constants
from .cse import (CommonSubexpression, eliminate_all_cse,
                  merge_duplicates_inplace)
from .distributivity import Distributivity, resolve_threads
from .loop_fusion import LoopFusion, fuse_loops, loops_independent
from .loop_unroll import LoopUnrolling, unroll_loop
from .spec_unroll import SpeculativeUnrolling, speculative_unroll
from .strength import StrengthReduction, csd_digits


def default_library(unroll_factors=(2, 4)) -> TransformLibrary:
    """The transformation suite used by FACT in the experiments."""
    return TransformLibrary([
        ConstantPropagation(),
        BranchElimination(),
        Commutativity(),
        Associativity(),
        Distributivity(),
        Speculation(),
        LoopInvariantMotion(),
        LoopUnrolling(unroll_factors),
        SpeculativeUnrolling(),
        LoopFusion(),
        CommonSubexpression(),
        StrengthReduction(),
    ])


def flamel_library() -> TransformLibrary:
    """The transformation suite of the Flamel baseline (Trickey 1987).

    Flamel applies constant folding, tree height reduction
    (associativity), distributivity, and code motion, but selects
    greedily on dataflow metrics rather than schedule estimates.  The
    unrolling transformations are deliberately absent: a static
    loop-weighted path metric rates every trip-count halving as a
    straight win, so a schedule-blind greedy would unroll without
    bound — precisely the failure mode that motivates FACT's
    schedule-guided selection.  Historical Flamel performed no
    unrolling either.
    """
    return TransformLibrary([
        ConstantPropagation(),
        Commutativity(),
        Associativity(),
        Distributivity(),
        Speculation(),
        LoopInvariantMotion(),
        CommonSubexpression(),
    ])


__all__ = [
    "Associativity", "BranchElimination", "Candidate",
    "CommonSubexpression", "Commutativity", "ConstantPropagation",
    "Distributivity", "LoopFusion", "LoopInvariantMotion",
    "LoopUnrolling", "SpeculativeUnrolling", "Speculation",
    "StrengthReduction",
    "TransformLibrary", "Transformation", "collect_assoc_leaves",
    "collect_signed_leaves", "csd_digits", "dead_code_elimination",
    "default_library", "discard_from_regions", "eliminate_all_cse",
    "eliminate_branch", "flamel_library", "fold_all_constants",
    "fuse_loops", "hoist_out_of_loop", "loops_independent",
    "merge_duplicates_inplace", "resolve_threads", "speculate",
    "speculative_unroll", "unroll_loop",
]

"""Strength reduction: constant multiplication → shift/add network.

A multiply by a constant is decomposed into its canonical signed digit
(CSD) form ``c = Σ ±2^k`` and rebuilt from shifts (free wiring in
hardware — the shift amount is constant), adds, and subtracts.  This is
the transformation behind the paper's FIR result: with one multiplier
the filter is serialized, while the shift-add form pipelines at one
sample per cycle on the adder/subtracter/inverter allocation of
Table 3.

Only decompositions with at most :data:`MAX_TERMS` digits are offered —
beyond that the multiplier is cheaper and the candidate would merely
bloat the search.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..cdfg.ir import Graph
from ..cdfg.ops import OpKind
from ..cdfg.regions import Behavior
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import LOCAL, Match
from .base import Transformation
from .cleanup import fresh_const, place_like

#: Maximum signed digits in an offered decomposition.
MAX_TERMS = 8


def csd_digits(value: int) -> List[Tuple[int, int]]:
    """Canonical signed digit decomposition: ``value = Σ sign · 2^shift``.

    Returns ``(sign, shift)`` pairs with no two adjacent shifts, the
    minimal-weight signed-binary representation.
    """
    digits: List[Tuple[int, int]] = []
    v = value
    shift = 0
    while v != 0:
        if v & 1:
            rem = v & 3
            if rem == 3:  # ...11 -> +100 -1
                digits.append((-1, shift))
                v += 1
            else:
                digits.append((1, shift))
                v -= 1
        v >>= 1
        shift += 1
    return digits


class StrengthReduction(Transformation):
    """Replace multiplications by constants with shift/add networks."""

    name = "strength"
    scope = LOCAL

    def match_at(self, behavior: Behavior, analyses: AnalysisManager,
                 nid: int) -> List[Match]:
        g = behavior.graph
        if g.nodes[nid].kind is not OpKind.MUL:
            return []
        site = self._constant_operand(g, nid)
        if site is None:
            return []
        value, var_src = site
        digits = csd_digits(abs(value))
        if value == 0 or not 1 <= len(digits) <= MAX_TERMS:
            return []
        return [Match(self.name, f"mul#{nid} by {value} -> shift/add",
                      (nid,), (nid, value, var_src))]

    @staticmethod
    def _constant_operand(g: Graph, nid: int
                          ) -> Optional[Tuple[int, int]]:
        a, b = g.data_inputs(nid)
        if g.nodes[a].kind is OpKind.CONST:
            return (g.nodes[a].value or 0, b)
        if g.nodes[b].kind is OpKind.CONST:
            return (g.nodes[b].value or 0, a)
        return None

    def apply(self, behavior: Behavior, match: Match) -> None:
        nid, value, var_src = match.params
        g = behavior.graph
        guards = list(g.control_inputs(nid))
        result = _shift_add_network(behavior, nid, var_src, value, guards)
        g.replace_uses(nid, result)

    # The predicate reads the node plus its two operand kinds/values.
    def dependencies(self, behavior: Behavior, match: Match) -> frozenset:
        nid = match.params[0]
        g = behavior.graph
        deps = set(match.footprint)
        if nid in g.nodes:
            deps.update(g.input_ports(nid).values())
        return frozenset(deps)

    def rescan_roots(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty: Set[int]) -> Set[int]:
        g = behavior.graph
        roots = {n for n in dirty if n in g.nodes}
        for n in list(roots):
            roots.update(dst for dst, _ in g.data_users(n))
        return roots


def _shift_add_network(b: Behavior, site: int, x: int, value: int,
                       guards) -> int:
    """Build ``x * value`` from constant shifts and adds/subs."""
    g = b.graph

    def new_op(kind: OpKind, left: int, right: int) -> int:
        nid = g.add_node(kind)
        g.set_data_edge(left, nid, 0)
        g.set_data_edge(right, nid, 1)
        for cond, pol in guards:
            g.add_control_edge(cond, nid, pol)
        place_like(b, nid, site)
        return nid

    def shifted(shift: int) -> int:
        if shift == 0:
            return x
        return new_op(OpKind.SHL, x, fresh_const(b, shift))

    negate_all = value < 0
    digits = csd_digits(abs(value))
    pos = [shifted(s) for sign, s in digits if sign > 0]
    neg = [shifted(s) for sign, s in digits if sign < 0]
    if negate_all:
        pos, neg = neg, pos

    def add_tree(items: List[int]) -> int:
        while len(items) > 1:
            nxt = [new_op(OpKind.ADD, items[i], items[i + 1])
                   for i in range(0, len(items) - 1, 2)]
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    if not pos:
        return new_op(OpKind.SUB, fresh_const(b, 0), add_tree(neg))
    result = add_tree(pos)
    if neg:
        result = new_op(OpKind.SUB, result, add_tree(neg))
    return result

"""Loop fusion: merge adjacent independent counted loops.

Two loops that are adjacent in a sequence, iterate the same
statically-known number of times, and share no dataflow or memory may
be fused into one loop executing both bodies per iteration.  Fusion
exposes cross-loop CSE and lets one body's idle resources serve the
other even on schedulers without concurrent-loop support; it is the
classic companion of the paper's concurrent loop optimization.

The fused loop keeps the first loop's condition; the second loop's
condition logic becomes dead and is cleaned up by DCE.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from ..cdfg.ops import OpKind
from ..cdfg.regions import (Behavior, BlockRegion, LoopRegion, Region,
                            SeqRegion)
from ..errors import TransformError
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import GLOBAL, Match
from .base import Transformation


def _flat_blocks(loop: LoopRegion) -> Optional[List[BlockRegion]]:
    blocks: List[BlockRegion] = []
    for region in loop.body.walk():
        if isinstance(region, LoopRegion):
            return None
        if isinstance(region, BlockRegion):
            blocks.append(region)
    return blocks


def _arrays_touched(behavior: Behavior, ids: Set[int],
                    writes_only: bool = False) -> Set[str]:
    out: Set[str] = set()
    for nid in ids:
        node = behavior.graph.nodes[nid]
        if node.kind is OpKind.STORE or (not writes_only
                                         and node.kind is OpKind.LOAD):
            out.add(node.array or "")
    return out


def loops_independent(behavior: Behavior, a: LoopRegion,
                      b: LoopRegion) -> bool:
    """No dataflow, control or memory dependence between the loops."""
    ids_a = a.node_ids()
    ids_b = b.node_ids()
    g = behavior.graph
    for nid in ids_a:
        if any(s in ids_b for s in g.succs(nid)):
            return False
        if any(p in ids_b for p in g.preds(nid)):
            return False
    writes_a = _arrays_touched(behavior, ids_a, writes_only=True)
    writes_b = _arrays_touched(behavior, ids_b, writes_only=True)
    all_a = _arrays_touched(behavior, ids_a)
    all_b = _arrays_touched(behavior, ids_b)
    return not (writes_a & all_b) and not (writes_b & all_a)


def _fusable_pairs(behavior: Behavior,
                   analyses: Optional[AnalysisManager] = None,
                   dirty: Optional[Set[int]] = None
                   ) -> List[Tuple[SeqRegion, int, LoopRegion,
                                   LoopRegion]]:
    out = []
    for region in behavior.region.walk():
        if not isinstance(region, SeqRegion):
            continue
        for i, (first, second) in enumerate(zip(region.children,
                                                region.children[1:])):
            if not (isinstance(first, LoopRegion)
                    and isinstance(second, LoopRegion)):
                continue
            if dirty is not None and not (
                    (first.node_ids() | second.node_ids()) & dirty):
                continue  # scoped re-scan: neither loop was touched
            if first.trip_count is None \
                    or first.trip_count != second.trip_count:
                continue
            if _flat_blocks(first) is None \
                    or _flat_blocks(second) is None:
                continue
            independent = (analyses.loops_independent(first, second)
                           if analyses is not None
                           else loops_independent(behavior, first, second))
            if not independent:
                continue
            out.append((region, i, first, second))
    return out


class LoopFusion(Transformation):
    """Fuse adjacent independent counted loops."""

    name = "fusion"
    scope = GLOBAL

    def match(self, behavior: Behavior,
              analyses: AnalysisManager) -> List[Match]:
        return self._matches(behavior, analyses, None)

    def match_scoped(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty) -> List[Match]:
        # A dirty id no longer in the graph was removed from *some*
        # loop the child can't identify; fall back to scanning every
        # pair (see AnalysisManager.loops_touching).
        nodes = behavior.graph.nodes
        if any(nid not in nodes for nid in dirty):
            return self._matches(behavior, analyses, None)
        return self._matches(behavior, analyses, set(dirty))

    def _matches(self, behavior: Behavior, analyses: AnalysisManager,
                 dirty: Optional[Set[int]]) -> List[Match]:
        out: List[Match] = []
        for _seq, _index, first, second in _fusable_pairs(behavior,
                                                          analyses, dirty):
            sites = tuple(sorted(first.node_ids() | second.node_ids()))
            out.append(Match(self.name, f"fuse {first.name} + {second.name}",
                             sites, (first.name, second.name)))
        return out

    def apply(self, behavior: Behavior, match: Match) -> None:
        first_name, second_name = match.params
        fuse_loops(behavior, first_name, second_name)

    def domain(self, behavior: Behavior,
               analyses: AnalysisManager) -> Optional[FrozenSet[int]]:
        # Adjacency and trip counts live in the structure key;
        # independence reads only loop-member edges and kinds, and every
        # edge mutation dirties both endpoints.
        return analyses.loop_nodes


def fuse_loops(behavior: Behavior, first_name: str,
               second_name: str) -> None:
    """Fuse the named adjacent loops (first's condition survives)."""
    first = behavior.loop(first_name)
    second = behavior.loop(second_name)
    parent = _parent_of(behavior.region, first)
    if parent is None or second not in parent.children:
        raise TransformError(
            f"loops {first_name} and {second_name} are not siblings")
    if parent.children.index(second) \
            != parent.children.index(first) + 1:
        raise TransformError(
            f"loops {first_name} and {second_name} are not adjacent")
    if first.trip_count is None \
            or first.trip_count != second.trip_count:
        raise TransformError("loop fusion requires equal known trip "
                             "counts")
    if not loops_independent(behavior, first, second):
        raise TransformError("loops are not independent")

    # Merge loop-carried variables and bodies.
    first.loop_vars.extend(second.loop_vars)
    if not isinstance(first.body, SeqRegion):
        first.body = SeqRegion([first.body])
    # The second loop's condition logic moves into the body where DCE
    # can collect it once nothing references it.
    if second.cond_nodes:
        first.body.children.append(BlockRegion(list(second.cond_nodes)))
    first.body.children.append(second.body)
    parent.children.remove(second)
    # Pure region restructuring: journal the absorbed loop's nodes so
    # version-keyed fingerprints and incremental dirty sets see it.
    behavior.graph.touch(*sorted(second.node_ids()))


def _parent_of(region: Region, target: LoopRegion) -> Optional[SeqRegion]:
    if isinstance(region, SeqRegion):
        if target in region.children:
            return region
        for child in region.children:
            found = _parent_of(child, target)
            if found is not None:
                return found
    elif isinstance(region, LoopRegion):
        return _parent_of(region.body, target)
    return None

"""Code motion: speculation and loop-invariant hoisting.

**Speculation** removes the control dependencies of a pure operation so
it can execute unconditionally, before its guard resolves.  This is the
transformation that collapses GCD's iteration: both subtractions and
the comparison run concurrently, with joins selecting the live result.
Because ``JOIN`` nodes distinguish their inputs by which one executed,
any join directly consuming the speculated value receives a guarded
``COPY`` carrying the original guards.

**Loop-invariant hoisting** moves a pure operation whose inputs are all
defined outside the loop into the block preceding it.

Operations that can trap (division, modulo) or touch memory are never
moved; stores are side effects and never speculated.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set

from ..cdfg.ir import Graph
from ..cdfg.ops import FREE_KINDS, OpKind
from ..cdfg.regions import (Behavior, BlockRegion, LoopRegion, Region,
                            SeqRegion)
from ..errors import TransformError
from ..rewrite.analyses import AnalysisManager
from ..rewrite.pattern import GLOBAL, LOCAL, Match
from .base import Transformation
from .cleanup import discard_from_regions, owner_region

#: Kinds that must never be executed speculatively or hoisted.
_IMMOBILE = FREE_KINDS | {OpKind.LOAD, OpKind.STORE, OpKind.DIV,
                          OpKind.MOD, OpKind.SELECT}


class Speculation(Transformation):
    """Execute guarded pure operations unconditionally.

    A speculated operation's operands must also be available
    unconditionally, so each candidate lifts the whole *guarded cone*
    feeding the target: the target plus, transitively, every guarded
    pure producer it reads.  Cones containing memory accesses or
    trapping operations are not offered.
    """

    name = "speculation"
    scope = LOCAL

    def match_at(self, behavior: Behavior, analyses: AnalysisManager,
                 nid: int) -> List[Match]:
        g = behavior.graph
        node = g.nodes[nid]
        if node.kind in _IMMOBILE:
            return []
        if not g.control_inputs(nid):
            return []
        cone = _guarded_cone(g, nid)
        if cone is None:
            return []
        extra = f" (+{len(cone) - 1} producers)" if len(cone) > 1 else ""
        return [Match(self.name, f"speculate {node.kind.value}#{nid}{extra}",
                      tuple(sorted(cone)), (nid,))]

    def apply(self, behavior: Behavior, match: Match) -> None:
        speculate(behavior, match.params[0])

    # The cone walk reads each member's guards plus the guard status of
    # every member's producers (to decide where the cone stops).
    def dependencies(self, behavior: Behavior, match: Match) -> frozenset:
        g = behavior.graph
        deps = set(match.footprint)
        for member in match.footprint:
            if member in g.nodes:
                deps.update(g.input_ports(member).values())
        return frozenset(deps)

    def rescan_roots(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty: Set[int]) -> Set[int]:
        """Dirty nodes plus the upward closure through *guarded* data
        users: a new/changed cone member surfaces as a match only at
        guarded consumers reachable through guarded nodes."""
        g = behavior.graph
        roots = {n for n in dirty if n in g.nodes}
        frontier = list(roots)
        visited = set(frontier)
        while frontier:
            cur = frontier.pop()
            for dst, _ in g.data_users(cur):
                if dst in visited:
                    continue
                if g.control_inputs(dst):
                    visited.add(dst)
                    roots.add(dst)
                    frontier.append(dst)
        return roots


def _guarded_cone(g: Graph, nid: int) -> Optional[Set[int]]:
    """The guarded pure producers that must be speculated with ``nid``.

    Returns None when the cone contains an immobile operation.
    """
    cone: Set[int] = set()
    stack = [nid]
    while stack:
        cur = stack.pop()
        if cur in cone:
            continue
        node = g.nodes[cur]
        if node.kind in _IMMOBILE:
            return None
        cone.add(cur)
        for src in g.input_ports(cur).values():
            if g.control_inputs(src) and src not in cone:
                stack.append(src)
    return cone


def speculate(behavior: Behavior, nid: int) -> None:
    """Strip the guards of ``nid`` and its guarded cone.

    Joins resolve by "which input executed", so any join directly
    consuming a speculated value receives a guarded COPY carrying the
    original guards.
    """
    g = behavior.graph
    cone = _guarded_cone(g, nid)
    if cone is None:
        raise TransformError(
            f"node {nid}: speculation cone contains an immobile "
            f"operation")
    for member in sorted(cone):
        old_guards = g.control_inputs(member)
        if not old_guards:
            continue
        for dst, port in g.data_users(member):
            if g.nodes[dst].kind is not OpKind.JOIN:
                continue
            cp = g.add_node(OpKind.COPY)
            g.set_data_edge(member, cp, 0)
            for cond, pol in old_guards:
                g.add_control_edge(cond, cp, pol)
            g.set_data_edge(cp, dst, port)
            _place_with(behavior, cp, member)
        g.clear_control_inputs(member)


class LoopInvariantMotion(Transformation):
    """Hoist pure loop-invariant operations out of loop bodies."""

    name = "hoist"
    scope = GLOBAL

    def match(self, behavior: Behavior,
              analyses: AnalysisManager) -> List[Match]:
        out: List[Match] = []
        for loop in analyses.loops:
            out.extend(self._loop_matches(behavior, loop))
        return out

    def _loop_matches(self, behavior: Behavior,
                      loop: LoopRegion) -> List[Match]:
        g = behavior.graph
        loop_ids = loop.node_ids()
        if _parent_seq(behavior.region, loop) is None:
            return []
        out: List[Match] = []
        for nid in sorted(loop_ids):
            node = g.nodes[nid]
            if node.kind in _IMMOBILE:
                continue
            if nid in loop.cond_nodes and nid == loop.cond:
                continue
            if any(lv.join == nid for lv in loop.loop_vars):
                continue
            if g.control_inputs(nid):
                continue  # speculate first, then hoist
            if any(src in loop_ids
                   for src in g.input_ports(nid).values()):
                continue
            out.append(Match(
                self.name,
                f"hoist {node.kind.value}#{nid} out of {loop.name}",
                (nid,), (nid, loop.name)))
        return out

    def match_scoped(self, behavior: Behavior, analyses: AnalysisManager,
                     dirty) -> List[Match]:
        out: List[Match] = []
        for loop in analyses.loops_touching(dirty):
            out.extend(self._loop_matches(behavior, loop))
        return out

    def dependencies(self, behavior: Behavior, match: Match) -> frozenset:
        # Invariance of the hoisted node depends on the whole loop's
        # membership, not just the node: any mutation inside the loop
        # can create or destroy the match.
        _nid, loop_name = match.params
        return frozenset(behavior.loop(loop_name).node_ids())

    def apply(self, behavior: Behavior, match: Match) -> None:
        nid, loop_name = match.params
        hoist_out_of_loop(behavior, nid, loop_name)

    def domain(self, behavior: Behavior,
               analyses: AnalysisManager) -> Optional[FrozenSet[int]]:
        # The matcher reads loop-member kinds and their edge endpoints
        # (both dirtied by any mutation of them) plus region shape,
        # which the structure-key gate already covers.
        return analyses.loop_nodes


def hoist_out_of_loop(behavior: Behavior, nid: int,
                      loop_name: str) -> None:
    """Move ``nid`` into the block preceding the named loop."""
    loop = behavior.loop(loop_name)
    parent = _parent_seq(behavior.region, loop)
    if parent is None:
        return
    index = parent.children.index(loop)
    discard_from_regions(behavior, nid)
    if index > 0 and isinstance(parent.children[index - 1], BlockRegion):
        parent.children[index - 1].add(nid)
    else:
        block = BlockRegion([nid])
        parent.children.insert(index, block)
    # A region move changes no graph tables; record it in the journal so
    # version-keyed fingerprints and incremental dirty sets see it.
    behavior.graph.touch(nid)


def _parent_seq(region: Region, target: LoopRegion) -> Optional[SeqRegion]:
    if isinstance(region, SeqRegion):
        if target in region.children:
            return region
        for child in region.children:
            found = _parent_seq(child, target)
            if found is not None:
                return found
    elif isinstance(region, LoopRegion):
        return _parent_seq(region.body, target)
    return None


def _place_with(behavior: Behavior, new_id: int, site: int) -> None:
    region = owner_region(behavior, site)
    if isinstance(region, BlockRegion):
        region.add(new_id)
    elif isinstance(region, LoopRegion):
        region.cond_nodes.append(new_id)

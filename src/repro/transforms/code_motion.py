"""Code motion: speculation and loop-invariant hoisting.

**Speculation** removes the control dependencies of a pure operation so
it can execute unconditionally, before its guard resolves.  This is the
transformation that collapses GCD's iteration: both subtractions and
the comparison run concurrently, with joins selecting the live result.
Because ``JOIN`` nodes distinguish their inputs by which one executed,
any join directly consuming the speculated value receives a guarded
``COPY`` carrying the original guards.

**Loop-invariant hoisting** moves a pure operation whose inputs are all
defined outside the loop into the block preceding it.

Operations that can trap (division, modulo) or touch memory are never
moved; stores are side effects and never speculated.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..cdfg.ir import Graph
from ..cdfg.ops import FREE_KINDS, OpKind
from ..cdfg.regions import (Behavior, BlockRegion, LoopRegion, Region,
                            SeqRegion)
from ..errors import TransformError
from .base import Candidate, Transformation
from .cleanup import discard_from_regions, owner_region

#: Kinds that must never be executed speculatively or hoisted.
_IMMOBILE = FREE_KINDS | {OpKind.LOAD, OpKind.STORE, OpKind.DIV,
                          OpKind.MOD, OpKind.SELECT}


class Speculation(Transformation):
    """Execute guarded pure operations unconditionally.

    A speculated operation's operands must also be available
    unconditionally, so each candidate lifts the whole *guarded cone*
    feeding the target: the target plus, transitively, every guarded
    pure producer it reads.  Cones containing memory accesses or
    trapping operations are not offered.
    """

    name = "speculation"

    def find(self, behavior: Behavior) -> List[Candidate]:
        g = behavior.graph
        out: List[Candidate] = []
        for nid in g.node_ids():
            node = g.nodes[nid]
            if node.kind in _IMMOBILE:
                continue
            if not g.control_inputs(nid):
                continue
            cone = _guarded_cone(g, nid)
            if cone is None:
                continue
            out.append(self._candidate(nid, sorted(cone), node.kind))
        return out

    def _candidate(self, nid: int, cone: List[int],
                   kind: OpKind) -> Candidate:
        def mutate(b: Behavior) -> None:
            speculate(b, nid)

        extra = f" (+{len(cone) - 1} producers)" if len(cone) > 1 else ""
        return Candidate(self.name,
                         f"speculate {kind.value}#{nid}{extra}", mutate,
                         sites=tuple(cone))


def _guarded_cone(g: Graph, nid: int) -> Optional[Set[int]]:
    """The guarded pure producers that must be speculated with ``nid``.

    Returns None when the cone contains an immobile operation.
    """
    cone: Set[int] = set()
    stack = [nid]
    while stack:
        cur = stack.pop()
        if cur in cone:
            continue
        node = g.nodes[cur]
        if node.kind in _IMMOBILE:
            return None
        cone.add(cur)
        for src in g.input_ports(cur).values():
            if g.control_inputs(src) and src not in cone:
                stack.append(src)
    return cone


def speculate(behavior: Behavior, nid: int) -> None:
    """Strip the guards of ``nid`` and its guarded cone.

    Joins resolve by "which input executed", so any join directly
    consuming a speculated value receives a guarded COPY carrying the
    original guards.
    """
    g = behavior.graph
    cone = _guarded_cone(g, nid)
    if cone is None:
        raise TransformError(
            f"node {nid}: speculation cone contains an immobile "
            f"operation")
    for member in sorted(cone):
        old_guards = g.control_inputs(member)
        if not old_guards:
            continue
        for dst, port in g.data_users(member):
            if g.nodes[dst].kind is not OpKind.JOIN:
                continue
            cp = g.add_node(OpKind.COPY)
            g.set_data_edge(member, cp, 0)
            for cond, pol in old_guards:
                g.add_control_edge(cond, cp, pol)
            g.set_data_edge(cp, dst, port)
            _place_with(behavior, cp, member)
        g.clear_control_inputs(member)


class LoopInvariantMotion(Transformation):
    """Hoist pure loop-invariant operations out of loop bodies."""

    name = "hoist"

    def find(self, behavior: Behavior) -> List[Candidate]:
        g = behavior.graph
        out: List[Candidate] = []
        for loop in behavior.loops():
            loop_ids = loop.node_ids()
            parent = _parent_seq(behavior.region, loop)
            if parent is None:
                continue
            for nid in sorted(loop_ids):
                node = g.nodes[nid]
                if node.kind in _IMMOBILE:
                    continue
                if nid in loop.cond_nodes and nid == loop.cond:
                    continue
                if any(lv.join == nid for lv in loop.loop_vars):
                    continue
                if g.control_inputs(nid):
                    continue  # speculate first, then hoist
                if any(src in loop_ids
                       for src in g.input_ports(nid).values()):
                    continue
                out.append(self._candidate(nid, node.kind, loop.name))
        return out

    def _candidate(self, nid: int, kind: OpKind,
                   loop_name: str) -> Candidate:
        def mutate(b: Behavior) -> None:
            hoist_out_of_loop(b, nid, loop_name)

        return Candidate(self.name,
                         f"hoist {kind.value}#{nid} out of {loop_name}",
                         mutate, sites=(nid,))


def hoist_out_of_loop(behavior: Behavior, nid: int,
                      loop_name: str) -> None:
    """Move ``nid`` into the block preceding the named loop."""
    loop = behavior.loop(loop_name)
    parent = _parent_seq(behavior.region, loop)
    if parent is None:
        return
    index = parent.children.index(loop)
    discard_from_regions(behavior, nid)
    if index > 0 and isinstance(parent.children[index - 1], BlockRegion):
        parent.children[index - 1].add(nid)
    else:
        block = BlockRegion([nid])
        parent.children.insert(index, block)


def _parent_seq(region: Region, target: LoopRegion) -> Optional[SeqRegion]:
    if isinstance(region, SeqRegion):
        if target in region.children:
            return region
        for child in region.children:
            found = _parent_seq(child, target)
            if found is not None:
                return found
    elif isinstance(region, LoopRegion):
        return _parent_seq(region.body, target)
    return None


def _place_with(behavior: Behavior, new_id: int, site: int) -> None:
    region = owner_region(behavior, site)
    if isinstance(region, BlockRegion):
        region.add(new_id)
    elif isinstance(region, LoopRegion):
        region.cond_nodes.append(new_id)

"""Streaming evaluation pipeline primitives.

The barrier loop (``evaluate_batch``) hands a whole generation to the
engine and waits; nothing downstream moves until the slowest candidate
finishes.  This package holds the small, dependency-free pieces that let
the engine, the search and the explorer run the same loop as a
*pipeline* instead: candidates flow through a bounded in-flight window,
results surface in completion order, and an in-order committer restores
enumeration order wherever determinism demands it (Pareto-front
admission).  See ``docs/pipeline.md`` for the end-to-end picture.

Nothing here imports from ``repro.core`` or ``repro.sched`` — the
package must stay importable from both sides of the pipeline without
cycles.
"""
from .pipeline import InOrderCommitter, StreamStats
from .policy import AdmissionPolicy, available_cpus

__all__ = ["AdmissionPolicy", "InOrderCommitter", "StreamStats",
           "available_cpus"]

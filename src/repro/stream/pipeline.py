"""Completion-order plumbing: in-order commit and stream counters.

``InOrderCommitter`` is the determinism half of the pipeline: results
arrive in completion order, but some consumers (Pareto-front admission,
anything diffed byte-for-byte against the barrier path) must see them in
submission order.  The committer buffers out-of-order arrivals and
releases the contiguous committed prefix:

>>> c = InOrderCommitter()
>>> c.offer(2, "late")
[]
>>> c.offer(0, "first")
[(0, 'first')]
>>> c.offer(1, "second")
[(1, 'second'), (2, 'late')]
>>> c.depth, c.next_index, c.max_depth
(0, 3, 2)

``StreamStats`` is the observability half: the counters a streaming run
accumulates (admissions, merges, flushes, shed speculation) plus the
high-water marks (in-flight window, reorder depth) that back the
``stream.*`` gauges in ``docs/observability.md``.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = ["InOrderCommitter", "StreamStats"]


class InOrderCommitter:
    """Reorders completion-order arrivals back into submission order.

    ``offer(index, item)`` registers one arrival and returns the list of
    ``(index, item)`` pairs that just became committable — the contiguous
    run starting at ``next_index``.  Indices must be unique; each is
    offered exactly once.
    """

    __slots__ = ("_next", "_held", "max_depth")

    def __init__(self, start: int = 0) -> None:
        self._next = start
        self._held: Dict[int, Any] = {}
        #: deepest the reorder buffer ever got
        self.max_depth = 0

    def offer(self, index: int, item: Any) -> List[Tuple[int, Any]]:
        """Register arrival ``index``; return newly committable pairs."""
        if index < self._next or index in self._held:
            raise ValueError(f"index {index} offered twice")
        self._held[index] = item
        if len(self._held) > self.max_depth:
            self.max_depth = len(self._held)
        out: List[Tuple[int, Any]] = []
        while self._next in self._held:
            out.append((self._next, self._held.pop(self._next)))
            self._next += 1
        return out

    @property
    def depth(self) -> int:
        """Arrivals currently held back waiting for an earlier index."""
        return len(self._held)

    @property
    def next_index(self) -> int:
        """First index not yet committed (== count committed so far)."""
        return self._next


@dataclass
class StreamStats:
    """Counters and high-water marks of a streaming evaluation run.

    Counts are cumulative over the run (a campaign's worth of
    generations).  ``enqueued`` counts every candidate pulled from the
    input; each is then either ``merged`` (duplicate of an in-flight
    key), a ``cache_hits`` (served from the evaluation cache without
    scheduling) or ``submitted`` for evaluation; ``completed`` counts
    finished evaluations.  ``flushes`` counts opportunistic deferred
    Markov-visit flushes (serial batched backend), ``speculated`` /
    ``shed`` count the explorer's speculative feeder decisions, and
    ``carried`` / ``adopted`` count speculative evaluations left running
    across a generation boundary and re-attached by a later stream.
    """

    enqueued: int = 0
    submitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    merged: int = 0
    flushes: int = 0
    speculated: int = 0
    shed: int = 0
    carried: int = 0
    adopted: int = 0
    #: peak simultaneously in-flight evaluations
    max_inflight: int = 0
    #: peak depth of the in-order commit reorder buffer
    max_reorder_depth: int = 0

    _COUNTERS = ("enqueued", "submitted", "completed", "cache_hits",
                 "merged", "flushes", "speculated", "shed", "carried",
                 "adopted")
    _GAUGES = ("max_inflight", "max_reorder_depth")

    def add(self, other: "StreamStats") -> None:
        """Fold ``other`` into this one (gauges take the max)."""
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in self._GAUGES:
            setattr(self, name, max(getattr(self, name),
                                    getattr(other, name)))

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (counters and gauges) for JSON export."""
        return {name: getattr(self, name)
                for name in self._COUNTERS + self._GAUGES}

    def summary(self) -> str:
        """One human line, used by ``--stats`` output."""
        return (f"stream: {self.enqueued} enqueued, "
                f"{self.submitted} submitted, {self.cache_hits} cache hits, "
                f"{self.merged} merged, {self.flushes} flushes, "
                f"{self.speculated} speculated ({self.shed} shed, "
                f"{self.carried} carried, {self.adopted} adopted), "
                f"peak inflight {self.max_inflight}, "
                f"peak reorder {self.max_reorder_depth}")

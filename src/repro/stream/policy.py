"""Admission policy for the streaming evaluation pipeline.

One small dataclass of knobs, shared by the engine's stream (window and
flush sizing) and the explorer's speculative feeder (speculation caps
and shedding).  Every knob defaults to 0 = "derive from the worker
count", so ``AdmissionPolicy()`` is always a sensible policy.
"""
from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["AdmissionPolicy", "available_cpus"]


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    Speculative tail-filling trades idle parallel capacity for
    latency; on a single-CPU host there is no idle capacity, so the
    explorer consults this to turn speculation off entirely (every
    speculative cycle would be stolen from the pipeline itself).
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs governing how candidates are admitted into the stream.

    max_inflight:
        Bound on simultaneously submitted evaluations (the pool window).
        0 derives ``2 * workers`` (at least 4): enough slack that a
        finishing worker always finds a queued successor, small enough
        that completion order stays close to submission order.
    flush_size:
        Serial batched-backend streams defer Markov visit resolution and
        flush dirty fragments through ``visits_of_many`` once this many
        candidates are buffered (opportunistic sub-generation flushes,
        bit-identical to any other flush composition).
    speculate:
        Allow the explorer to fill generation-tail idle slots with
        predicted next-generation candidates.  Speculative results only
        warm caches and the run store — they are never admitted into a
        front.
    max_speculative:
        Cap on speculative submissions per generation; 0 derives the
        in-flight window (speculation refills the whole window at the
        generation boundary — the next generation's first waves are
        already running when it starts).
    shed_backlog:
        The speculative backpressure threshold, used twice; 0 derives
        ``max(2, workers)``.  The feeder *holds off* (yields no work)
        until at most this many real results remain uncommitted, so
        predictions are made late, on nearly complete information; and
        it *sheds* candidates while more than this many real results
        sit in the in-order-commit reorder buffer (landed but blocked
        by an earlier straggler) — a deep reorder buffer means the
        stream is struggling to retire real work, so speculation would
        only compound the backlog.
    """

    max_inflight: int = 0
    flush_size: int = 8
    speculate: bool = True
    max_speculative: int = 0
    shed_backlog: int = 0

    def effective_window(self, workers: int) -> int:
        """In-flight bound for a pool of ``workers`` processes."""
        if self.max_inflight > 0:
            return self.max_inflight
        return max(4, 2 * max(1, workers))

    def effective_flush(self) -> int:
        """Serial deferred-visits flush granularity (at least 1)."""
        return max(1, self.flush_size)

    def effective_speculation(self, workers: int) -> int:
        """Per-generation speculative submission cap."""
        if not self.speculate:
            return 0
        if self.max_speculative > 0:
            return self.max_speculative
        return self.effective_window(workers)

    def effective_shed_backlog(self, workers: int) -> int:
        """Reorder-buffer depth beyond which speculation sheds."""
        if self.shed_backlog > 0:
            return self.shed_backlog
        return max(2, workers)

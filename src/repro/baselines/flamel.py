"""Flamel baseline (Trickey, 1987): transform first, schedule after.

Flamel applies the same kind of transformation suite as FACT and can
also cross basic-block boundaries, but it selects transformations with
*static dataflow heuristics* — no scheduling feedback.  We model its
selection as greedy hill climbing on a lexicographic metric:

1. weighted critical-path length (ns) of each region, scaled by loop
   nesting (inner regions execute more often) — tree height reduction
   and speculation improve this;
2. total operation cost (Σ delays) — constant folding and CSE improve
   this, and it *rejects* moves like strength reduction that trade one
   multiply for several adds, which is precisely why Flamel misses the
   schedule-level wins FACT finds (Table 2's FIR row).

After the greedy fixpoint the behavior goes through the same scheduler
as everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..cdfg.regions import (Behavior, BlockRegion, LoopRegion, Region,
                            SeqRegion)
from ..errors import ReproError
from ..hw import Allocation, Library
from ..sched.driver import ScheduleResult, Scheduler
from ..sched.types import BranchProbs, ResourceModel, SchedConfig
from ..transforms import TransformLibrary, flamel_library

#: Assumed executions of a loop body per entry, for metric weighting.
LOOP_WEIGHT = 10.0


def static_metric(behavior: Behavior, library: Library,
                  allocation: Allocation) -> Tuple[float, float, int]:
    """Lexicographic cost, lower is better.

    ``(weighted critical path ns, total op cost ns, guarded-op count)``
    — the last component lets the greedy climb out of plateaus where a
    single speculation step does not yet shorten the critical path.
    """
    rm = ResourceModel(behavior.graph, library, allocation)
    g = behavior.graph

    def critical_path(nodes) -> float:
        ids = set(nodes)
        if not ids:
            return 0.0
        height = {}
        for nid in reversed(g.topo_order(ids)):
            succ = max((height.get(s, 0.0) for s in g.succs(nid)
                        if s in ids), default=0.0)
            height[nid] = rm.delay_of(nid) + succ
        return max(height.values(), default=0.0)

    def walk(region: Region, weight: float) -> float:
        if isinstance(region, BlockRegion):
            return weight * critical_path(region.nodes)
        if isinstance(region, SeqRegion):
            return sum(walk(c, weight) for c in region.children)
        if isinstance(region, LoopRegion):
            w = weight * (region.trip_count if region.trip_count
                          is not None else LOOP_WEIGHT)
            return (w * critical_path(region.cond_nodes)
                    + walk(region.body, w))
        return 0.0

    path = walk(behavior.region, 1.0)
    cost = sum(rm.delay_of(nid) for nid in g.node_ids())
    guarded = sum(1 for nid in g.node_ids()
                  if g.control_inputs(nid)
                  and rm.resource_of(nid) is not None)
    return (path, cost, guarded)


@dataclass
class FlamelResult:
    """Greedy transformation outcome plus the final schedule."""

    behavior: Behavior
    result: ScheduleResult
    steps: int
    applied: Tuple[str, ...]


def run_flamel(behavior: Behavior, library: Library,
               allocation: Allocation,
               config: Optional[SchedConfig] = None,
               branch_probs: Optional[BranchProbs] = None,
               transforms: Optional[TransformLibrary] = None,
               max_steps: int = 40) -> FlamelResult:
    """Greedy static transformation, then scheduling."""
    transforms = transforms or flamel_library()
    current = behavior
    current_metric = static_metric(current, library, allocation)
    applied = []
    steps = 0
    size_cap = 6 * max(len(behavior.graph), 16)
    for _ in range(max_steps):
        best_metric = current_metric
        best_behavior = None
        best_desc = ""
        for cand in transforms.candidates(current):
            try:
                candidate_behavior = cand.apply(current)
            except ReproError:
                continue
            if len(candidate_behavior.graph) > size_cap:
                continue  # runaway growth guard
            metric = static_metric(candidate_behavior, library,
                                   allocation)
            if metric < best_metric:
                best_metric = metric
                best_behavior = candidate_behavior
                best_desc = f"{cand.transform}:{cand.description}"
        if best_behavior is None:
            break
        current = best_behavior
        current_metric = best_metric
        applied.append(best_desc)
        steps += 1
    result = Scheduler(current, library, allocation, config,
                       branch_probs).schedule()
    return FlamelResult(current, result, steps, tuple(applied))

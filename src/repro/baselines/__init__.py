"""Reference flows: M1 (schedule only) and Flamel (transform-first)."""

from .flamel import FlamelResult, run_flamel, static_metric
from .m1 import run_m1

__all__ = ["FlamelResult", "run_flamel", "run_m1", "static_metric"]

"""M1 baseline: behavioral synthesis without transformation search.

"Method M1 just takes the input CDFG through behavioral synthesis,
giving it access to only those transformations supported by our
scheduling algorithm" (paper Section 5) — i.e. the scheduler's implicit
loop unrolling, functional pipelining and concurrent-loop optimization
still apply, but no CDFG rewriting happens.
"""

from __future__ import annotations

from typing import Optional

from ..cdfg.regions import Behavior
from ..hw import Allocation, Library
from ..sched.driver import ScheduleResult, Scheduler
from ..sched.types import BranchProbs, SchedConfig


def run_m1(behavior: Behavior, library: Library, allocation: Allocation,
           config: Optional[SchedConfig] = None,
           branch_probs: Optional[BranchProbs] = None) -> ScheduleResult:
    """Schedule the untransformed behavior."""
    return Scheduler(behavior, library, allocation, config,
                     branch_probs).schedule()

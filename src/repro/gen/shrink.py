"""Delta-debugging reducer for failing generated circuits.

Given a :class:`~repro.gen.generator.GeneratedCircuit` whose oracle
fails, :func:`shrink` searches for a smaller program whose *same*
oracle still fails, by structural edits on the program tree:

* drop statements (ddmin-style: halves, then quarters, then singles —
  applied to every block, including branch arms and loop bodies);
* collapse an ``if`` to its then-arm, its else-arm, or nothing;
* unroll a loop to a single body copy, or halve its trip count;
* replace expressions by their operands and narrow constants toward 0.

Every candidate edit is validated end-to-end: the reduced program must
still render, parse, lower and validate (otherwise the edit is
reverted), and the target oracle must still report a divergence.  The
result is therefore always a well-formed failing circuit — never a
parse error masquerading as a reproduction.

Determinism: edits are enumerated in a fixed order and the oracle stack
is seeded from the circuit, so shrinking the same finding twice gives
the same minimal circuit.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..errors import ReproError
from .generator import (GAssign, GBinary, GConst, GExpr, GFor, GIf,
                        GLoad, GProgram, GStmt, GStore, GUnary, GWhile,
                        GeneratedCircuit)
from .oracles import context_for, run_oracle

#: Default cap on oracle re-checks per shrink (each check compiles and
#: re-runs the failing oracle, so this bounds total shrink cost).
MAX_CHECKS = 400


@dataclass
class ShrinkResult:
    """Outcome of one reduction."""

    circuit: GeneratedCircuit
    oracle: str
    #: Whether the input circuit failed its oracle at all (when False
    #: the input is returned untouched).
    reproduced: bool
    #: Oracle re-checks spent.
    checks: int
    #: Successful edits applied.
    edits: int

    @property
    def lines(self) -> int:
        return len(self.circuit.source.splitlines())


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _blocks(program: GProgram) -> Iterator[List[GStmt]]:
    """Every mutable statement list in the tree, outermost first."""
    yield program.body
    stack: List[GStmt] = list(program.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, GIf):
            yield stmt.then_body
            yield stmt.else_body
            stack.extend(stmt.then_body)
            stack.extend(stmt.else_body)
        elif isinstance(stmt, (GFor, GWhile)):
            yield stmt.body
            stack.extend(stmt.body)


Slot = Tuple[Callable[[], GExpr], Callable[[GExpr], None]]


def _expr_slots(program: GProgram) -> List[Slot]:
    """(getter, setter) for every expression position in the tree."""
    slots: List[Slot] = []

    def descend(get: Callable[[], GExpr],
                set_: Callable[[GExpr], None]) -> None:
        slots.append((get, set_))
        expr = get()
        if isinstance(expr, GBinary):
            descend(lambda e=expr: e.left,
                    lambda v, e=expr: setattr(e, "left", v))
            descend(lambda e=expr: e.right,
                    lambda v, e=expr: setattr(e, "right", v))
        elif isinstance(expr, GUnary):
            descend(lambda e=expr: e.operand,
                    lambda v, e=expr: setattr(e, "operand", v))
        elif isinstance(expr, GLoad):
            descend(lambda e=expr: e.index,
                    lambda v, e=expr: setattr(e, "index", v))

    def tuple_slot(seq: list, k: int) -> None:
        descend(lambda: seq[k][1],
                lambda v: seq.__setitem__(k, (seq[k][0], v)))

    for k in range(len(program.decls)):
        tuple_slot(program.decls, k)
    for stmt in _stmts(program):
        if isinstance(stmt, GAssign):
            descend(lambda s=stmt: s.expr,
                    lambda v, s=stmt: setattr(s, "expr", v))
        elif isinstance(stmt, GStore):
            descend(lambda s=stmt: s.index,
                    lambda v, s=stmt: setattr(s, "index", v))
            descend(lambda s=stmt: s.expr,
                    lambda v, s=stmt: setattr(s, "expr", v))
        elif isinstance(stmt, GIf):
            descend(lambda s=stmt: s.cond,
                    lambda v, s=stmt: setattr(s, "cond", v))
    for k in range(len(program.tail)):
        tuple_slot(program.tail, k)
    return slots


def _stmts(program: GProgram) -> Iterator[GStmt]:
    stack: List[GStmt] = list(program.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, GIf):
            stack.extend(stmt.then_body)
            stack.extend(stmt.else_body)
        elif isinstance(stmt, (GFor, GWhile)):
            stack.extend(stmt.body)


def _simpler(expr: GExpr) -> List[GExpr]:
    """Strictly smaller replacement candidates, best first."""
    if isinstance(expr, GBinary):
        return [expr.left, expr.right, GConst(0)]
    if isinstance(expr, GUnary):
        return [expr.operand, GConst(0)]
    if isinstance(expr, GLoad):
        return [expr.index, GConst(0)]
    if isinstance(expr, GConst):
        out = []
        if expr.value not in (0,):
            out.append(GConst(0))
        if abs(expr.value) > 1:
            out.append(GConst(expr.value // 2))
        return out
    return []  # GVar: already minimal (a const rewrite rarely helps)


def shrink(circuit: GeneratedCircuit, oracle: str,
           max_checks: int = MAX_CHECKS) -> ShrinkResult:
    """Reduce ``circuit`` while ``oracle`` keeps failing on it.

    The reducer never raises on a non-reproducing input: if the oracle
    passes on the given circuit, the circuit is returned unchanged with
    ``reproduced=False``.
    """
    program = copy.deepcopy(circuit.program)
    budget = _Budget(max_checks)
    edits = 0

    def rebuilt(prog: GProgram) -> GeneratedCircuit:
        return GeneratedCircuit(
            seed=circuit.seed, config=circuit.config,
            schema_version=circuit.schema_version, program=prog,
            source=prog.render())

    def fails() -> bool:
        try:
            ctx = context_for(rebuilt(program))
        except ReproError:
            return False  # edit broke validity: revert
        try:
            return run_oracle(oracle, ctx) is not None
        except ReproError:
            return True
        except RecursionError:
            return True
        except Exception:
            # The harness records unexpected exceptions as findings,
            # so the reducer must keep chasing them too.
            return True

    if not fails():
        return ShrinkResult(circuit=circuit, oracle=oracle,
                            reproduced=False, checks=budget.spent,
                            edits=0)

    def attempt(apply: Callable[[], Callable[[], None]]) -> bool:
        """Run one edit; keep it if the oracle still fails."""
        nonlocal edits
        if not budget.take():
            return False
        revert = apply()
        if fails():
            edits += 1
            return True
        revert()
        return False

    progress = True
    while progress and budget.spent < budget.limit:
        progress = False
        # 1. ddmin statement removal over every block.
        for block in list(_blocks(program)):
            chunk = len(block)
            while chunk >= 1:
                i = 0
                while i < len(block):
                    j = min(len(block), i + chunk)
                    removed = block[i:j]

                    def apply(b=block, i=i, j=j, r=removed):
                        del b[i:j]
                        return lambda: b.__setitem__(slice(i, i), r)

                    if attempt(apply):
                        progress = True
                    else:
                        i = j
                chunk //= 2
        # 2. Structure collapse: ifs to one arm, loops to one body copy
        #    or a smaller trip.
        for block in list(_blocks(program)):
            for i, stmt in enumerate(list(block)):
                if i >= len(block) or block[i] is not stmt:
                    continue  # an earlier edit shifted this block
                replacements: List[List[GStmt]] = []
                if isinstance(stmt, GIf):
                    replacements = [list(stmt.then_body),
                                    list(stmt.else_body)]
                elif isinstance(stmt, (GFor, GWhile)):
                    replacements = [
                        [GAssign(stmt.var, GConst(0))] + list(stmt.body)]
                    if stmt.trip > 1:
                        def halve(s=stmt):
                            old = s.trip
                            s.trip = max(1, s.trip // 2)
                            return lambda: setattr(s, "trip", old)
                        if attempt(halve):
                            progress = True
                for repl in replacements:
                    def apply(b=block, i=i, s=stmt, r=repl):
                        b[i:i + 1] = r
                        return lambda: b.__setitem__(
                            slice(i, i + len(r)), [s])
                    if attempt(apply):
                        progress = True
                        break
        # 3. Expression simplification + constant narrowing.
        for get, set_ in _expr_slots(program):
            current = get()
            for candidate in _simpler(current):
                def apply(g=get, s=set_, old=current, new=candidate):
                    s(new)
                    return lambda: s(old)
                if attempt(apply):
                    progress = True
                    break

    return ShrinkResult(circuit=rebuilt(program), oracle=oracle,
                        reproduced=True, checks=budget.spent,
                        edits=edits)


__all__ = ["MAX_CHECKS", "ShrinkResult", "shrink"]

"""Seeded circuit generation + differential fuzzing (``repro.gen``).

Three layers (see ``docs/fuzzing.md``):

* :mod:`repro.gen.generator` — seeded, parameterized random BDL
  programs, valid by construction and reproducible from
  ``(schema_version, seed, config)``;
* :mod:`repro.gen.oracles` / :mod:`repro.gen.harness` — stacked
  differential oracles run over each circuit, divergences recorded as
  structured :class:`~repro.gen.oracles.FuzzFinding` objects;
* :mod:`repro.gen.shrink` — delta-debugging reducer that minimizes a
  failing circuit while its oracle keeps failing.
"""

from .generator import (DEFAULT_GRID, GEN_SCHEMA_VERSION, GenConfig,
                        GeneratedCircuit, config_from_dict, generate,
                        grid_config)
from .harness import (FuzzOptions, FuzzReport, replay_finding,
                      run_campaign)
from .oracles import ORACLES, FuzzFinding, OracleContext, run_oracle
from .shrink import ShrinkResult, shrink

__all__ = [
    "DEFAULT_GRID", "FuzzFinding", "FuzzOptions", "FuzzReport",
    "GEN_SCHEMA_VERSION", "GenConfig", "GeneratedCircuit", "ORACLES",
    "OracleContext", "ShrinkResult", "config_from_dict", "generate",
    "grid_config", "replay_finding", "run_campaign", "run_oracle",
    "shrink",
]

"""Seeded random behavioral-circuit generator.

The fixed six-benchmark suite exercises a sliver of the CDFG /
scheduler / rewrite space; this module manufactures arbitrarily many
control-flow-intensive BDL programs from a seed, so the differential
oracles (:mod:`repro.gen.oracles`) can sweep loop/branch shapes the
reconstructed paper circuits never reach.

Design contract — every emitted circuit is **valid by construction**:

* it parses (the program is rendered from a statement tree, never by
  string mutation);
* it lowers and validates (all locals are pre-declared and
  unconditionally defined, so no read-before-assignment; outputs are
  always assigned in the tail);
* it terminates under the interpreter (every loop is a bounded counter
  loop whose induction variable is owned by the loop and stepped by a
  positive constant);
* it is free of runtime traps (division and modulo only by non-zero
  constants; array indices masked onto a power-of-two size; shift
  amounts are small constants).

Reproducibility: a circuit is a pure function of
``(GEN_SCHEMA_VERSION, seed, GenConfig)``.  The program *tree* is kept
on the returned :class:`GeneratedCircuit` so the shrinker
(:mod:`repro.gen.shrink`) can reduce failing circuits structurally.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..cdfg.regions import Behavior
from ..cdfg.validate import validate_behavior
from ..errors import ConfigError
from ..lang import compile_source

#: Bump whenever generated output changes for the same (seed, config):
#: recorded in every finding so old replay recipes fail loudly instead
#: of replaying a different circuit.
GEN_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

#: Operator pools per mix (BDL surface syntax).
OP_MIXES: Dict[str, Tuple[str, ...]] = {
    "arith": ("+", "-", "*", "+", "-"),
    "logic": ("&", "|", "^", "<<", ">>"),
    "mixed": ("+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"),
}

COMPARISONS: Tuple[str, ...] = ("<", ">", "<=", ">=", "==", "!=")


@dataclass(frozen=True)
class GenConfig:
    """Shape parameters of the random circuit family.

    Every field participates in the reproducibility key: findings
    record the full config, and :func:`config_from_dict` round-trips
    it.  Fields are validated eagerly so a bad CLI override fails as a
    :class:`~repro.errors.ConfigError` before any circuit is emitted.
    """

    #: Maximum loop-nesting depth (0 = straight-line).
    loop_depth: int = 2
    #: Probability a statement slot becomes an ``if``.
    branch_density: float = 0.3
    #: Probability a statement slot becomes a loop (depth permitting).
    loop_density: float = 0.25
    #: Probability an ``if`` grows an ``else`` arm.
    else_density: float = 0.5
    #: Statements per block (top level gets ``block_stmts`` per region).
    block_stmts: int = 4
    #: Independent top-level statement groups (adjacent regions).
    regions: int = 2
    #: Operator mix: one of :data:`OP_MIXES`.
    op_mix: str = "mixed"
    #: Maximum expression tree depth.
    expr_depth: int = 3
    #: Scalar input count.
    n_inputs: int = 3
    #: Scalar output count.
    n_outputs: int = 2
    #: Pre-declared local variables (assignment targets).
    n_locals: int = 4
    #: Arrays declared (0 disables memory traffic).
    n_arrays: int = 1
    #: Array length — must be a power of two (indices are masked).
    array_size: int = 8
    #: Probability an expression leaf is an array load (arrays present).
    array_ratio: float = 0.25
    #: Probability a statement is an array store (arrays present).
    store_density: float = 0.15
    #: Maximum loop trip count (keeps interpretation bounded).
    max_trip: int = 5
    #: Generate bounded ``while`` loops in addition to ``for`` loops.
    while_loops: bool = True

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on bad parameters."""
        if self.op_mix not in OP_MIXES:
            raise ConfigError(
                f"unknown op_mix {self.op_mix!r}; expected one of "
                f"{sorted(OP_MIXES)}")
        if self.loop_depth < 0 or self.expr_depth < 1:
            raise ConfigError("loop_depth must be >= 0 and expr_depth >= 1")
        if self.n_inputs < 1 or self.n_outputs < 1 or self.n_locals < 1:
            raise ConfigError("need at least one input, output and local")
        if self.block_stmts < 1 or self.regions < 1:
            raise ConfigError("block_stmts and regions must be >= 1")
        if self.max_trip < 1:
            raise ConfigError("max_trip must be >= 1")
        if self.n_arrays < 0:
            raise ConfigError("n_arrays must be >= 0")
        if self.n_arrays and self.array_size & (self.array_size - 1):
            raise ConfigError(
                f"array_size must be a power of two, got {self.array_size}")
        for name in ("branch_density", "loop_density", "else_density",
                     "array_ratio", "store_density"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {v}")

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def config_from_dict(doc: Dict[str, object]) -> GenConfig:
    """Rebuild a :class:`GenConfig` from a finding's recorded dict."""
    known = {f for f in GenConfig.__dataclass_fields__}
    extra = set(doc) - known
    if extra:
        raise ConfigError(
            f"unknown GenConfig fields {sorted(extra)} (schema drift? "
            f"this build is gen schema v{GEN_SCHEMA_VERSION})")
    cfg = GenConfig(**doc)  # type: ignore[arg-type]
    cfg.validate()
    return cfg


#: The default campaign grid: one axis per structural regime.  The
#: harness cycles through it by circuit index, so any N-circuit run
#: covers every regime and ``seed + index`` pins each circuit exactly.
DEFAULT_GRID: Tuple[GenConfig, ...] = (
    GenConfig(),                                              # mixed/looped
    GenConfig(loop_depth=0, branch_density=0.45,
              block_stmts=3, regions=2),                      # branchy, flat
    GenConfig(loop_depth=3, loop_density=0.45, block_stmts=3,
              op_mix="arith", n_arrays=0),                    # deep loops
    GenConfig(op_mix="logic", branch_density=0.2,
              array_ratio=0.4, store_density=0.3),            # memory/logic
    GenConfig(loop_depth=1, while_loops=True, loop_density=0.5,
              n_locals=5, op_mix="arith"),                    # wide whiles
    GenConfig(loop_depth=2, branch_density=0.35, block_stmts=3,
              else_density=0.2, n_arrays=2, array_size=4),    # sparse elses
)


# ---------------------------------------------------------------------------
# Program tree
# ---------------------------------------------------------------------------

class GExpr:
    """Expression tree node (rendered to BDL surface syntax)."""

    __slots__ = ()

    def render(self) -> str:
        raise NotImplementedError


class GConst(GExpr):
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def render(self) -> str:
        return str(self.value) if self.value >= 0 else f"(-{-self.value})"


class GVar(GExpr):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def render(self) -> str:
        return self.name


class GLoad(GExpr):
    """``arr[index & mask]`` — mask keeps any index in bounds."""

    __slots__ = ("array", "index", "mask")

    def __init__(self, array: str, index: GExpr, mask: int) -> None:
        self.array = array
        self.index = index
        self.mask = mask

    def render(self) -> str:
        return f"{self.array}[({self.index.render()}) & {self.mask}]"


class GUnary(GExpr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: GExpr) -> None:
        self.op = op
        self.operand = operand

    def render(self) -> str:
        return f"({self.op}{self.operand.render()})"


class GBinary(GExpr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: GExpr, right: GExpr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


class GStmt:
    """Statement tree node."""

    __slots__ = ()

    def render(self, indent: int) -> List[str]:
        raise NotImplementedError


def _pad(indent: int) -> str:
    return "    " * indent


class GAssign(GStmt):
    __slots__ = ("name", "expr")

    def __init__(self, name: str, expr: GExpr) -> None:
        self.name = name
        self.expr = expr

    def render(self, indent: int) -> List[str]:
        return [f"{_pad(indent)}{self.name} = {self.expr.render()};"]


class GStore(GStmt):
    __slots__ = ("array", "index", "mask", "expr")

    def __init__(self, array: str, index: GExpr, mask: int,
                 expr: GExpr) -> None:
        self.array = array
        self.index = index
        self.mask = mask
        self.expr = expr

    def render(self, indent: int) -> List[str]:
        return [f"{_pad(indent)}{self.array}[({self.index.render()}) & "
                f"{self.mask}] = {self.expr.render()};"]


class GIf(GStmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: GExpr, then_body: List[GStmt],
                 else_body: Optional[List[GStmt]] = None) -> None:
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body or []

    def render(self, indent: int) -> List[str]:
        lines = [f"{_pad(indent)}if ({self.cond.render()}) {{"]
        for stmt in self.then_body:
            lines.extend(stmt.render(indent + 1))
        if self.else_body:
            lines.append(f"{_pad(indent)}}} else {{")
            for stmt in self.else_body:
                lines.extend(stmt.render(indent + 1))
        lines.append(f"{_pad(indent)}}}")
        return lines


class GFor(GStmt):
    """``for (v = 0; v < trip * step; v = v + step)`` — always bounded."""

    __slots__ = ("var", "trip", "step", "body")

    def __init__(self, var: str, trip: int, step: int,
                 body: List[GStmt]) -> None:
        self.var = var
        self.trip = trip
        self.step = step
        self.body = body

    def render(self, indent: int) -> List[str]:
        bound = self.trip * self.step
        lines = [f"{_pad(indent)}for ({self.var} = 0; "
                 f"{self.var} < {bound}; "
                 f"{self.var} = {self.var} + {self.step}) {{"]
        for stmt in self.body:
            lines.extend(stmt.render(indent + 1))
        lines.append(f"{_pad(indent)}}}")
        return lines


class GWhile(GStmt):
    """Counter-bounded ``while`` — the induction variable is reserved
    for the loop, so termination is structural, not probabilistic."""

    __slots__ = ("var", "trip", "body")

    def __init__(self, var: str, trip: int, body: List[GStmt]) -> None:
        self.var = var
        self.trip = trip
        self.body = body

    def render(self, indent: int) -> List[str]:
        lines = [f"{_pad(indent)}{self.var} = 0;",
                 f"{_pad(indent)}while ({self.var} < {self.trip}) {{"]
        for stmt in self.body:
            lines.extend(stmt.render(indent + 1))
        lines.append(f"{_pad(indent + 1)}{self.var} = {self.var} + 1;")
        lines.append(f"{_pad(indent)}}}")
        return lines


@dataclass
class GProgram:
    """A complete procedure: interface + pre-declared locals + body."""

    name: str
    inputs: List[str]
    outputs: List[str]
    arrays: List[Tuple[str, int]]
    #: Pre-declared locals with their initializing expressions.
    decls: List[Tuple[str, GExpr]]
    body: List[GStmt]
    #: Output name -> expression for the tail assignments.
    tail: List[Tuple[str, GExpr]] = field(default_factory=list)

    def render(self) -> str:
        params = [f"in {name}" for name in self.inputs]
        params += [f"out {name}" for name in self.outputs]
        params += [f"array {name}[{size}]" for name, size in self.arrays]
        lines = [f"proc {self.name}({', '.join(params)}) {{"]
        for name, expr in self.decls:
            lines.append(f"    var {name} = {expr.render()};")
        for stmt in self.body:
            lines.extend(stmt.render(1))
        for name, expr in self.tail:
            lines.append(f"    {name} = {expr.render()};")
        lines.append("}")
        return "\n".join(lines) + "\n"


@dataclass
class GeneratedCircuit:
    """One generated circuit plus everything needed to reproduce it."""

    seed: int
    config: GenConfig
    schema_version: int
    program: GProgram
    source: str

    def behavior(self) -> Behavior:
        """Compile (and re-validate) the circuit."""
        beh = compile_source(self.source)
        validate_behavior(beh)
        return beh


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

class _Gen:
    """One generation run (all randomness from one seeded stream)."""

    def __init__(self, seed: int, config: GenConfig) -> None:
        self.rng = random.Random(
            f"repro.gen/v{GEN_SCHEMA_VERSION}/{seed}")
        self.cfg = config
        self.inputs = [f"in{i}" for i in range(config.n_inputs)]
        self.outputs = [f"out{i}" for i in range(config.n_outputs)]
        self.locals = [f"t{i}" for i in range(config.n_locals)]
        self.arrays = [(f"mem{i}", config.array_size)
                       for i in range(config.n_arrays)]
        self._loop_counter = 0

    # -- expressions ----------------------------------------------------
    def _readable(self, loop_vars: Sequence[str]) -> List[str]:
        return self.inputs + self.locals + list(loop_vars)

    def expr(self, depth: int, loop_vars: Sequence[str]) -> GExpr:
        rng, cfg = self.rng, self.cfg
        if depth <= 0 or rng.random() < 0.3:
            return self._leaf(loop_vars)
        op = rng.choice(OP_MIXES[cfg.op_mix])
        left = self.expr(depth - 1, loop_vars)
        if op in ("/", "%"):
            # Non-zero constant divisor: no runtime trap possible.
            return GBinary(op, left, GConst(rng.randint(1, 7)))
        if op in ("<<", ">>"):
            # Small constant shift: values stay in the datapath width.
            return GBinary(op, left, GConst(rng.randint(0, 4)))
        right = self.expr(depth - 1, loop_vars)
        if rng.random() < 0.15:
            un = rng.choice(("-", "~", "!"))
            left = GUnary(un, left)
        return GBinary(op, left, right)

    def _leaf(self, loop_vars: Sequence[str]) -> GExpr:
        rng, cfg = self.rng, self.cfg
        if self.arrays and rng.random() < cfg.array_ratio:
            name, size = rng.choice(self.arrays)
            return GLoad(name, self._leaf_scalar(loop_vars), size - 1)
        return self._leaf_scalar(loop_vars)

    def _leaf_scalar(self, loop_vars: Sequence[str]) -> GExpr:
        rng = self.rng
        pick = rng.random()
        if pick < 0.25:
            return GConst(rng.choice((0, 1, 2, 3, 5, 7, 13, 255)))
        return GVar(rng.choice(self._readable(loop_vars)))

    def cond(self, loop_vars: Sequence[str]) -> GExpr:
        rng, cfg = self.rng, self.cfg
        op = rng.choice(COMPARISONS)
        left = self.expr(min(2, cfg.expr_depth), loop_vars)
        right = self.expr(min(2, cfg.expr_depth), loop_vars)
        out: GExpr = GBinary(op, left, right)
        if rng.random() < 0.2:
            other = GBinary(rng.choice(COMPARISONS),
                            self._leaf_scalar(loop_vars),
                            self._leaf_scalar(loop_vars))
            out = GBinary(rng.choice(("&&", "||")), out, other)
        return out

    # -- statements -----------------------------------------------------
    def block(self, n_stmts: int, depth: int, loop_vars: Tuple[str, ...],
              in_branch: bool = False) -> List[GStmt]:
        out: List[GStmt] = []
        for _ in range(n_stmts):
            out.append(self.stmt(depth, loop_vars, in_branch))
        return out

    def stmt(self, depth: int, loop_vars: Tuple[str, ...],
             in_branch: bool = False) -> GStmt:
        rng, cfg = self.rng, self.cfg
        roll = rng.random()
        # The if-converted IR cannot host loops under branch guards
        # (BehaviorBuilder rejects them), so branches stay loop-free.
        if not in_branch and depth < cfg.loop_depth \
                and roll < cfg.loop_density:
            return self._loop(depth, loop_vars)
        # Hard structural cap: branch nesting stops two levels past the
        # loop-depth budget so the recursion terminates for any config.
        if depth < cfg.loop_depth + 2 \
                and roll < cfg.loop_density + cfg.branch_density:
            return self._if(depth, loop_vars)
        if self.arrays and rng.random() < cfg.store_density:
            name, size = rng.choice(self.arrays)
            return GStore(name, self.expr(2, loop_vars), size - 1,
                          self.expr(cfg.expr_depth, loop_vars))
        target = rng.choice(self.locals)
        return GAssign(target, self.expr(cfg.expr_depth, loop_vars))

    def _if(self, depth: int, loop_vars: Tuple[str, ...]) -> GIf:
        rng, cfg = self.rng, self.cfg
        n = rng.randint(1, max(1, cfg.block_stmts - 2))
        then_body = self.block(n, depth + 1, loop_vars, in_branch=True)
        else_body: Optional[List[GStmt]] = None
        if rng.random() < cfg.else_density:
            else_body = self.block(
                rng.randint(1, max(1, cfg.block_stmts - 2)),
                depth + 1, loop_vars, in_branch=True)
        return GIf(self.cond(loop_vars), then_body, else_body)

    def _loop(self, depth: int, loop_vars: Tuple[str, ...]) -> GStmt:
        rng, cfg = self.rng, self.cfg
        self._loop_counter += 1
        var = f"i{self._loop_counter}"
        inner = loop_vars + (var,)
        n = rng.randint(1, max(1, cfg.block_stmts - 1))
        body = self.block(n, depth + 1, inner)
        trip = rng.randint(1, cfg.max_trip)
        if cfg.while_loops and rng.random() < 0.4:
            return GWhile(var, trip, body)
        return GFor(var, trip, rng.choice((1, 1, 2)), body)

    # -- whole program --------------------------------------------------
    def program(self, name: str) -> GProgram:
        cfg = self.cfg
        # Declarations may only read inputs and already-declared locals
        # (the frontend rejects read-before-assignment), so the visible
        # local pool grows as the decl list is emitted.
        all_locals = list(self.locals)
        decls = []
        for k, local in enumerate(all_locals):
            self.locals = all_locals[:k]
            decls.append((local, self.expr(1, ())))
        self.locals = all_locals
        body: List[GStmt] = []
        for _ in range(cfg.regions):
            body.extend(self.block(cfg.block_stmts, 0, ()))
        tail = [(out, self.expr(cfg.expr_depth, ()))
                for out in self.outputs]
        return GProgram(name=name, inputs=list(self.inputs),
                        outputs=list(self.outputs),
                        arrays=list(self.arrays), decls=decls,
                        body=body, tail=tail)


def generate(seed: int, config: Optional[GenConfig] = None,
             name: Optional[str] = None) -> GeneratedCircuit:
    """Generate one circuit, deterministically from ``(seed, config)``.

    The emitted source is compiled and validated before being returned,
    so callers never see a circuit that fails the frontend — if one is
    ever produced it is a generator bug and raises immediately.
    """
    cfg = config or GenConfig()
    cfg.validate()
    gen = _Gen(seed, cfg)
    program = gen.program(name or f"fuzz_{seed}")
    source = program.render()
    circuit = GeneratedCircuit(seed=seed, config=cfg,
                               schema_version=GEN_SCHEMA_VERSION,
                               program=program, source=source)
    circuit.behavior()  # parse + lower + validate, or raise
    return circuit


def grid_config(index: int,
                grid: Sequence[GenConfig] = DEFAULT_GRID) -> GenConfig:
    """The grid entry a campaign uses for circuit ``index``."""
    return grid[index % len(grid)]


__all__ = [
    "COMPARISONS", "DEFAULT_GRID", "GAssign", "GBinary", "GConst",
    "GEN_SCHEMA_VERSION", "GExpr", "GFor", "GIf", "GLoad", "GProgram",
    "GStmt", "GStore", "GUnary", "GVar", "GWhile", "GenConfig",
    "GeneratedCircuit", "OP_MIXES", "config_from_dict", "generate",
    "grid_config",
]

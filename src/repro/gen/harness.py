"""The differential fuzz campaign runner.

A campaign walks ``count`` circuit indices: each index pins a seed
(``base_seed + index``) and a :class:`~repro.gen.generator.GenConfig`
(the grid entry ``index % len(grid)``), generates the circuit, and runs
the oracle stack from :mod:`repro.gen.oracles` over it.  Divergences —
and any exception escaping an oracle — become
:class:`~repro.gen.oracles.FuzzFinding` records in the returned
:class:`FuzzReport`, which serializes to ``FUZZ_report.json``.

Observability: per-circuit ``fuzz.circuit`` spans (with seed/oracle
attributes) and ``fuzz.*`` counters are emitted through the standard
:mod:`repro.obs` tracer/metrics plumbing, so ``--trace`` and
``--stats`` work exactly as they do for ``repro explore``.

Replay: :func:`replay_finding` rebuilds the circuit from
``(schema_version, seed, config)`` alone and re-runs the single
recorded oracle — byte-identical generation is guaranteed by the
generator's reproducibility contract, and enforced here by comparing
the regenerated source against the recorded one when present.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError, ReproError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, AnyTracer
from .generator import (DEFAULT_GRID, GEN_SCHEMA_VERSION, GenConfig,
                        GeneratedCircuit, config_from_dict, generate,
                        grid_config)
from .oracles import ORACLES, FuzzFinding, context_for, run_oracle

#: Default interval (in circuit indices) at which the pool-spawning
#: ``engine-backend`` oracle runs when workers >= 2.
POOL_EVERY = 25


@dataclass
class FuzzOptions:
    """Campaign parameters (all reproducibility-relevant ones are
    recorded in the report)."""

    #: Base seed: circuit ``i`` uses ``seed + i``.
    seed: int = 0
    #: Number of circuits to generate and check.
    count: int = 200
    #: Oracle names to run (default: the full stack).
    oracles: Sequence[str] = ()
    #: Config grid cycled by circuit index; empty = DEFAULT_GRID.
    grid: Sequence[GenConfig] = ()
    #: Single config override: replaces the grid entirely.
    config: Optional[GenConfig] = None
    #: Pool workers for the engine-backend oracle (< 2 skips it).
    workers: int = 0
    #: Run the pool-backend oracle every Nth circuit (it forks).
    pool_every: int = POOL_EVERY
    #: Stop the campaign after this many findings (0 = never).
    max_findings: int = 0
    #: Attach each failing circuit's shrunken source to its finding.
    shrink: bool = True

    def oracle_names(self) -> List[str]:
        names = list(self.oracles) or list(ORACLES)
        for name in names:
            if name not in ORACLES:
                raise ConfigError(
                    f"unknown oracle {name!r}; expected one of "
                    f"{sorted(ORACLES)}")
        return names

    def effective_grid(self) -> Sequence[GenConfig]:
        if self.config is not None:
            return (self.config,)
        return tuple(self.grid) or DEFAULT_GRID


@dataclass
class FuzzReport:
    """Campaign outcome: counters plus every recorded finding."""

    options_seed: int
    count: int
    schema_version: int = GEN_SCHEMA_VERSION
    circuits: int = 0
    checks: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    oracle_pass: Dict[str, int] = field(default_factory=dict)
    oracle_fail: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "seed": self.options_seed,
            "count": self.count,
            "circuits": self.circuits,
            "checks": self.checks,
            "elapsed_s": round(self.elapsed_s, 3),
            "oracle_pass": dict(sorted(self.oracle_pass.items())),
            "oracle_fail": dict(sorted(self.oracle_fail.items())),
            "findings": [f.as_dict() for f in self.findings],
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def _shrunk_source(circuit: GeneratedCircuit, oracle: str) -> str:
    """Best-effort minimization for the finding record."""
    from .shrink import shrink  # runtime import: shrink imports harness
    try:
        return shrink(circuit, oracle).circuit.source
    except Exception:  # pragma: no cover - shrinker must never mask
        return circuit.source


def run_campaign(options: FuzzOptions,
                 tracer: Optional[AnyTracer] = None,
                 metrics: Optional[MetricsRegistry] = None
                 ) -> FuzzReport:
    """Run one fuzz campaign and return its report.

    Never raises on a divergence — every failure is folded into the
    report.  Only truly unexpected infrastructure errors (e.g. the
    generator itself failing to produce a valid circuit) escape, since
    those invalidate the whole campaign rather than one circuit.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else MetricsRegistry()
    names = options.oracle_names()
    grid = options.effective_grid()
    report = FuzzReport(options_seed=options.seed, count=options.count)
    started = time.perf_counter()
    with tracer.span("fuzz.campaign", seed=options.seed,
                     count=options.count):
        for index in range(options.count):
            seed = options.seed + index
            config = grid_config(index, grid)
            with tracer.span("fuzz.circuit", seed=seed,
                             grid_index=index % len(grid)):
                circuit = generate(seed, config)
                ctx = context_for(circuit, workers=options.workers)
                report.circuits += 1
                metrics.inc("fuzz.circuits")
                for name in names:
                    if name == "engine-backend" and (
                            options.workers < 2
                            or index % max(1, options.pool_every)):
                        continue
                    detail = _check(ctx, name, report, metrics,
                                    tracer, options)
                    if detail and options.max_findings and \
                            len(report.findings) >= options.max_findings:
                        report.elapsed_s = time.perf_counter() - started
                        return report
    report.elapsed_s = time.perf_counter() - started
    metrics.inc("fuzz.findings", len(report.findings))
    return report


def _check(ctx, name: str, report: FuzzReport,
           metrics: MetricsRegistry, tracer: AnyTracer,
           options: FuzzOptions) -> Optional[str]:
    """Run one oracle; fold any divergence/exception into the report."""
    report.checks += 1
    with tracer.span("fuzz.oracle", oracle=name, seed=ctx.seed) as span:
        try:
            detail = run_oracle(name, ctx)
        except ReproError as exc:
            detail = f"{type(exc).__name__}: {exc}"
        except RecursionError as exc:
            detail = f"RecursionError: {exc}"
        except Exception as exc:
            detail = (f"unexpected {type(exc).__name__}: {exc}\n"
                      + traceback.format_exc(limit=6))
        span.set(diverged=bool(detail))
    if detail is None:
        report.oracle_pass[name] = report.oracle_pass.get(name, 0) + 1
        metrics.inc(f"fuzz.oracle.{name}.pass")
        return None
    report.oracle_fail[name] = report.oracle_fail.get(name, 0) + 1
    metrics.inc(f"fuzz.oracle.{name}.fail")
    source = ctx.circuit.source
    if options.shrink:
        source = _shrunk_source(ctx.circuit, name)
    report.findings.append(FuzzFinding(
        schema_version=GEN_SCHEMA_VERSION, seed=ctx.seed,
        config=ctx.circuit.config.as_dict(), oracle=name,
        detail=detail, source=source))
    return detail


def replay_finding(finding: FuzzFinding,
                   workers: int = 0) -> Optional[str]:
    """Re-run one finding's oracle from its seed + config alone.

    Returns the fresh divergence detail (``None`` if it no longer
    reproduces — e.g. after a fix).  Raises
    :class:`~repro.errors.ConfigError` if the finding was recorded
    under a different generator schema version, since the same seed
    would then denote a different circuit.
    """
    if finding.schema_version != GEN_SCHEMA_VERSION:
        raise ConfigError(
            f"finding was recorded under gen schema "
            f"v{finding.schema_version}, this build is "
            f"v{GEN_SCHEMA_VERSION}; the seed no longer denotes the "
            f"same circuit")
    config = config_from_dict(dict(finding.config))
    circuit = generate(finding.seed, config)
    ctx = context_for(circuit, workers=workers)
    try:
        return run_oracle(finding.oracle, ctx)
    except ReproError as exc:
        return f"{type(exc).__name__}: {exc}"


__all__ = [
    "FuzzOptions", "FuzzReport", "POOL_EVERY", "replay_finding",
    "run_campaign",
]

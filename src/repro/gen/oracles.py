"""Differential oracles: independent pipelines that must agree.

Each oracle takes an :class:`OracleContext` (one generated circuit plus
lazily shared derived artifacts — traces, profile, reference schedule)
and returns ``None`` on agreement or a human-readable divergence detail
string.  The harness (:mod:`repro.gen.harness`) wraps any non-``None``
detail — or any exception escaping an oracle — in a
:class:`FuzzFinding` carrying everything needed to replay it:
``(schema_version, seed, config, oracle)``.

The stack mirrors the repo's standing correctness claims:

=================  =====================================================
oracle             claim under test
=================  =====================================================
interp-stg         interpreter semantics vs. scheduled-STG statistics:
                   traces execute trap-free, the STG validates, and the
                   closed-form Markov average length agrees with a
                   seeded Monte-Carlo walk of the same chain
enum-parity        legacy ``TransformLibrary.candidates`` scan vs.
                   ``RewriteDriver`` (incremental) enumeration — same
                   canonically-ordered candidate set, also after an
                   apply step re-enumerates incrementally
rewrite-semantics  every applied candidate preserves interpreter
                   semantics (outputs + final memory) on shared traces
sched-incremental  region-cache (splice) scheduling is bit-identical to
                   the cache-off splice baseline — same states, labels,
                   ops, transitions and average length, cold and warm —
                   and structurally identical to the plain walk (whose
                   average may drift by float associativity only)
engine-backend     serial vs. process-pool evaluation engines score the
                   behavior identically
numeric-backend    scalar vs. batched numeric cores produce bit-
                   identical schedules, average lengths and power
                   estimates (same STG, same floats, same error class
                   on infeasible circuits)
stream-parity      the streaming evaluation pipeline
                   (``EvaluationEngine.evaluate_stream``) scores a
                   mixed batch — parent, rewritten children, in-batch
                   duplicates — identically to the barrier
                   ``evaluate_batch`` path, result for result
search-parity      the strategy layer's default ``greedy`` strategy
                   reproduces the frozen legacy search loop
                   (``repro.search.reference``) — best score, lineage,
                   history and counters — and the portfolio strategy's
                   winning design preserves interpreter semantics on
                   shared traces
=================  =====================================================
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..cdfg.interp import execute
from ..cdfg.regions import Behavior
from ..cdfg.validate import validate_behavior
from ..core import THROUGHPUT, Objective
from ..core.engine import (Evaluated, EvaluationEngine,
                           context_fingerprint)
from ..errors import ReproError, ScheduleError
from ..hw import Allocation, Library, dac98_library
from ..profiling import uniform_traces
from ..profiling.profiler import profile
from ..profiling.traces import TraceSet
from ..rewrite import RewriteDriver
from ..sched.driver import ScheduleResult, Scheduler
from ..sched.regioncache import RegionScheduleCache
from ..sched.types import SchedConfig
from ..stg.simulate import simulate
from ..transforms import default_library
from .generator import GEN_SCHEMA_VERSION, GenConfig, GeneratedCircuit

#: Traces shared by every oracle on one circuit (seeded per circuit).
TRACE_RUNS = 6

#: Monte-Carlo walks for the Markov cross-check.
SIM_RUNS = 256

#: Tolerance for Markov-vs-simulation mean length: the walk samples the
#: same chain the solver inverts, so only sampling error separates them.
SIM_REL_TOL = 0.35
SIM_ABS_TOL = 2.5

#: Candidates applied (per circuit) by the rewrite-semantics oracle.
MAX_APPLIES = 4


@dataclass
class FuzzFinding:
    """One recorded divergence, replayable from seed + config alone."""

    schema_version: int
    seed: int
    config: Dict[str, object]
    oracle: str
    detail: str
    source: str = ""

    @property
    def repro_command(self) -> str:
        """Shell command that re-runs exactly this oracle check."""
        cfg = GenConfig(**self.config)  # type: ignore[arg-type]
        overrides = " ".join(
            f"--gen {name}={getattr(cfg, name)}"
            for name in sorted(self.config)
            if getattr(cfg, name) != getattr(GenConfig(), name))
        base = (f"python -m repro fuzz replay --seed {self.seed} "
                f"--oracle {shlex.quote(self.oracle)}")
        return f"{base} {overrides}".strip()

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "seed": self.seed,
            "config": dict(self.config),
            "oracle": self.oracle,
            "detail": self.detail,
            "source": self.source,
            "repro_command": self.repro_command,
        }

    @staticmethod
    def from_dict(doc: Dict[str, object]) -> "FuzzFinding":
        return FuzzFinding(
            schema_version=int(doc["schema_version"]),  # type: ignore
            seed=int(doc["seed"]),  # type: ignore
            config=dict(doc["config"]),  # type: ignore
            oracle=str(doc["oracle"]),
            detail=str(doc.get("detail", "")),
            source=str(doc.get("source", "")))


@dataclass
class OracleContext:
    """Shared, lazily-built artifacts for one circuit's oracle stack.

    Derived products (traces, profile, reference schedule) are built on
    first use and reused by every oracle, so the stack costs one
    profile + one schedule, not five.
    """

    circuit: GeneratedCircuit
    behavior: Behavior
    workers: int = 0
    hw_library: Library = field(default_factory=dac98_library)
    allocation: Allocation = field(default_factory=lambda: Allocation(
        {name: 2 for name in dac98_library().fu_types}))
    sched_config: SchedConfig = field(default_factory=SchedConfig)
    _traces: Optional[TraceSet] = field(default=None, repr=False)
    _profile: Optional[object] = field(default=None, repr=False)
    _schedule: Optional[ScheduleResult] = field(default=None, repr=False)

    @property
    def seed(self) -> int:
        return self.circuit.seed

    def traces(self) -> TraceSet:
        if self._traces is None:
            self._traces = uniform_traces(
                self.behavior, TRACE_RUNS, lo=0, hi=255,
                seed=self.seed, array_lo=0, array_hi=255)
        return self._traces

    def branch_probs(self) -> Dict[int, float]:
        if self._profile is None:
            self._profile = profile(self.behavior, self.traces())
        return self._profile.branch_probs  # type: ignore[attr-defined]

    def schedule(self) -> ScheduleResult:
        """Reference schedule: plain walk, no region cache."""
        if self._schedule is None:
            self._schedule = Scheduler(
                self.behavior, self.hw_library, self.allocation,
                self.sched_config, self.branch_probs()).schedule()
        return self._schedule

    def try_schedule(self) -> Optional[ScheduleResult]:
        """Reference schedule, or ``None`` when the circuit trips the
        scheduler's ``max_states`` path-explosion guard.

        Hitting the guard is a documented capacity limit, not a
        divergence: every pipeline refuses the circuit the same way,
        so schedule-comparing oracles skip it.
        """
        try:
            return self.schedule()
        except ScheduleError as exc:
            if _is_path_explosion(exc):
                return None
            raise


def context_for(circuit: GeneratedCircuit,
                workers: int = 0) -> OracleContext:
    return OracleContext(circuit=circuit, behavior=circuit.behavior(),
                         workers=workers)


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------

def _is_path_explosion(exc: ScheduleError) -> bool:
    return "states" in str(exc) and "exceeded" in str(exc)


def oracle_interp_stg(ctx: OracleContext) -> Optional[str]:
    """Interpreter runs trap-free; STG validates; Markov == walk."""
    for i, case in enumerate(ctx.traces()):
        result = execute(ctx.behavior, case.inputs,
                         {k: list(v) for k, v in case.arrays.items()})
        for name, value in result.outputs.items():
            if not isinstance(value, int):
                return (f"trace {i}: output {name!r} is "
                        f"{type(value).__name__}, not int")
    sched = ctx.try_schedule()
    if sched is None:
        return None  # path explosion: agreed capacity limit, skip
    sched.stg.validate()
    mean_markov = sched.average_length()
    if not mean_markov > 0:
        return f"Markov average length {mean_markov!r} is not positive"
    walk = simulate(sched.stg, runs=SIM_RUNS, seed=ctx.seed)
    gap = abs(walk.mean_length - mean_markov)
    limit = SIM_ABS_TOL + SIM_REL_TOL * mean_markov
    if gap > limit:
        return (f"Markov average length {mean_markov:.3f} vs. "
                f"simulated mean {walk.mean_length:.3f} over "
                f"{SIM_RUNS} walks (gap {gap:.3f} > {limit:.3f})")
    return None


def _candidate_signature(cands) -> List[Tuple]:
    return [(c.sort_key, c.description) for c in cands]


def oracle_enum_parity(ctx: OracleContext) -> Optional[str]:
    """Legacy scan == incremental driver, before and after an apply."""
    library = default_library()
    legacy = sorted(library.candidates(ctx.behavior),
                    key=lambda c: c.sort_key)
    driver = RewriteDriver(library)
    driven = driver.candidates(ctx.behavior)
    if _candidate_signature(legacy) != _candidate_signature(driven):
        return (f"candidate sets differ: legacy {len(legacy)} vs. "
                f"driver {len(driven)}: "
                f"{_first_diff(legacy, driven)}")
    for cand in driven:
        try:
            child = driver.apply(ctx.behavior, cand)
        except ReproError:
            continue
        incremental = driver.candidates(child)
        fresh = RewriteDriver(library,
                              incremental=False).candidates(child)
        if _candidate_signature(incremental) != \
                _candidate_signature(fresh):
            return (f"after applying {cand.description!r}: incremental "
                    f"re-enumeration {len(incremental)} vs. full scan "
                    f"{len(fresh)}: {_first_diff(fresh, incremental)}")
        return None
    return None


def _first_diff(expect, got) -> str:
    ek = _candidate_signature(expect)
    gk = _candidate_signature(got)
    for i, (a, b) in enumerate(zip(ek, gk)):
        if a != b:
            return f"first diff at {i}: {a!r} != {b!r}"
    return f"length mismatch {len(ek)} != {len(gk)}"


def oracle_rewrite_semantics(ctx: OracleContext) -> Optional[str]:
    """Each applied rewrite preserves outputs and final memory."""
    driver = RewriteDriver(default_library())
    traces = ctx.traces()
    reference = [execute(ctx.behavior, case.inputs,
                         {k: list(v) for k, v in case.arrays.items()})
                 for case in traces]
    applied = 0
    for cand in driver.candidates(ctx.behavior):
        if applied >= MAX_APPLIES:
            break
        try:
            child = driver.apply(ctx.behavior, cand)
        except ReproError:
            continue
        applied += 1
        validate_behavior(child)
        for i, case in enumerate(traces):
            got = execute(child, case.inputs,
                          {k: list(v) for k, v in case.arrays.items()})
            if got.outputs != reference[i].outputs:
                return (f"{cand.transform}: {cand.description}: trace "
                        f"{i} outputs {got.outputs} != "
                        f"{reference[i].outputs}")
            if got.arrays != reference[i].arrays:
                return (f"{cand.transform}: {cand.description}: trace "
                        f"{i} final memory diverged")
    return None


def _stg_signature(sched: ScheduleResult) -> Tuple:
    stg = sched.stg
    states = tuple(
        (sid, stg.states[sid].label,
         tuple((op.node, op.iteration, round(op.exec_prob, 12))
               for op in stg.states[sid].ops))
        for sid in sorted(stg.states))
    transitions = tuple((t.src, t.dst, round(t.prob, 12), t.label)
                        for t in stg.transitions)
    return (stg.entry, stg.exit, states, transitions)


#: Relative slack for the plain-walk vs. splice-path average length.
#: The two assemble the same visit vector in different summation
#: orders, so only float associativity separates them (the repo's
#: bit-identity claim is *within* the splice path, cache on vs. off).
PLAIN_REL_TOL = 1e-9


def oracle_sched_incremental(ctx: OracleContext) -> Optional[str]:
    """Region-cache scheduling is bit-identical to the cache-off
    splice baseline (cold and warm), and structurally identical to the
    plain walk."""
    plain = ctx.try_schedule()
    if plain is None:
        return None  # path explosion: agreed capacity limit, skip
    probs = ctx.branch_probs()
    fp = context_fingerprint(ctx.hw_library, ctx.allocation,
                             ctx.sched_config, probs)

    def splice(cache: RegionScheduleCache) -> ScheduleResult:
        return Scheduler(ctx.behavior, ctx.hw_library, ctx.allocation,
                         ctx.sched_config, probs,
                         region_cache=cache).schedule()

    baseline = splice(RegionScheduleCache(max_entries=0, context_fp=fp))
    base_sig = _stg_signature(baseline)
    base_len = baseline.average_length()
    if _stg_signature(plain) != base_sig:
        return (f"splice-path STG differs from plain walk "
                f"({baseline.n_states()} vs. {plain.n_states()} states)")
    plain_len = plain.average_length()
    if abs(plain_len - base_len) > PLAIN_REL_TOL * max(1.0, base_len):
        return (f"splice-path average length {base_len!r} drifts from "
                f"plain walk {plain_len!r} beyond float tolerance")
    cache = RegionScheduleCache(max_entries=4096, context_fp=fp)
    for attempt in ("cold", "warm"):
        cached = splice(cache)
        if _stg_signature(cached) != base_sig:
            return (f"{attempt} region-cache STG differs from the "
                    f"cache-off baseline ({cached.n_states()} vs. "
                    f"{baseline.n_states()} states)")
        got_len = cached.average_length()
        if got_len != base_len:
            return (f"{attempt} region-cache average length {got_len!r}"
                    f" != cache-off baseline {base_len!r}")
    return None


def oracle_engine_backend(ctx: OracleContext) -> Optional[str]:
    """Serial and process-pool engines agree on the score."""
    objective = Objective(THROUGHPUT)
    probs = ctx.branch_probs()
    scores = {}
    for label, workers in (("serial", 0), ("pool", max(2, ctx.workers))):
        engine = EvaluationEngine(
            ctx.hw_library, ctx.allocation, objective,
            ctx.sched_config, probs, workers=workers, cache_size=0)
        try:
            scores[label] = engine.evaluate(ctx.behavior).score
        finally:
            engine.close()
    if scores["serial"] != scores["pool"]:
        return (f"serial score {scores['serial']!r} != pool score "
                f"{scores['pool']!r}")
    return None


def oracle_numeric_backend(ctx: OracleContext) -> Optional[str]:
    """Scalar and batched numeric backends are bit-identical.

    Schedules the circuit through the region-cache (splice) path — the
    path that batches fragment solves and loop-variant measurements —
    under each backend and demands the same STG signature, the same
    average length to the last bit, and the same power estimate.  A
    circuit that fails to schedule must fail under both backends with
    the same error class (messages may differ when several sub-chains
    fail, because the batched path surfaces the first failure in flush
    order rather than build order).
    """
    from ..numeric import batching_available, use_backend
    from ..power.model import estimate_power
    if not batching_available():
        return None  # nothing to compare against
    if ctx.try_schedule() is None:
        return None  # path explosion: agreed capacity limit, skip
    probs = ctx.branch_probs()
    fp = context_fingerprint(ctx.hw_library, ctx.allocation,
                             ctx.sched_config, probs)

    def run(backend: str):
        with use_backend(backend):
            cache = RegionScheduleCache(max_entries=4096, context_fp=fp)
            try:
                sched = Scheduler(
                    ctx.behavior, ctx.hw_library, ctx.allocation,
                    ctx.sched_config, probs,
                    region_cache=cache).schedule()
            except ReproError as exc:
                return type(exc).__name__, None, None, None
            est = estimate_power(sched.stg, ctx.behavior.graph,
                                 ctx.hw_library,
                                 visits=sched.expected_visits())
            return None, _stg_signature(sched), \
                sched.average_length(), est

    s_err, s_sig, s_len, s_est = run("scalar")
    b_err, b_sig, b_len, b_est = run("batched")
    if s_err is not None or b_err is not None:
        if s_err != b_err:
            return (f"scalar schedule error {s_err} vs. batched "
                    f"{b_err}")
        return None
    if s_sig != b_sig:
        return "scalar and batched backends built different STGs"
    if s_len != b_len:
        return (f"scalar average length {s_len!r} != batched "
                f"{b_len!r}")
    assert s_est is not None and b_est is not None
    for attr in ("fu_energy", "fu_ops", "memory_energy",
                 "register_energy", "overhead_energy"):
        if getattr(s_est, attr) != getattr(b_est, attr):
            return (f"power estimate field {attr} diverges: "
                    f"{getattr(s_est, attr)!r} != "
                    f"{getattr(b_est, attr)!r}")
    return None


def oracle_stream_parity(ctx: OracleContext) -> Optional[str]:
    """Streaming evaluation scores a batch exactly like the barrier.

    Builds a mixed generation — the parent, up to :data:`MAX_APPLIES`
    rewritten children, and an in-batch duplicate of the parent — and
    scores it through both ``evaluate_batch`` (the barrier path) and a
    reassembled ``evaluate_stream`` on fresh engines.  Demands the same
    score and the same STG signature at every index: the streaming
    pipeline's deferred flushes, in-flight dedup and reordering must be
    invisible in the per-candidate outputs.
    """
    if ctx.try_schedule() is None:
        return None  # path explosion: agreed capacity limit, skip
    probs = ctx.branch_probs()
    driver = RewriteDriver(default_library())
    pairs: List[Tuple[Behavior, Tuple[str, ...]]] = [(ctx.behavior, ())]
    applied = 0
    for cand in driver.candidates(ctx.behavior):
        if applied >= MAX_APPLIES:
            break
        try:
            child = driver.apply(ctx.behavior, cand)
        except ReproError:
            continue
        applied += 1
        pairs.append((child, (cand.description,)))
    pairs.append((ctx.behavior, ()))  # in-batch duplicate
    objective = Objective(THROUGHPUT)

    def run(streaming: bool) -> List[Tuple]:
        engine = EvaluationEngine(
            ctx.hw_library, ctx.allocation, objective,
            ctx.sched_config, probs, workers=0)
        try:
            if streaming:
                out: List[Optional[Evaluated]] = [None] * len(pairs)
                for i, ev in engine.evaluate_stream(iter(pairs)):
                    out[i] = ev
            else:
                out = list(engine.evaluate_batch(pairs))
        finally:
            engine.close()
        return [(ev.score,
                 _stg_signature(ev.result) if ev.result is not None
                 else None)
                for ev in out]  # type: ignore[union-attr]

    barrier = run(False)
    stream = run(True)
    for i, (want, got) in enumerate(zip(barrier, stream)):
        if want != got:
            return (f"candidate {i}/{len(pairs)}: barrier score "
                    f"{want[0]!r} / stream score {got[0]!r}"
                    + ("" if want[0] != got[0]
                       else " agree but the STGs differ"))
    return None


def oracle_search_parity(ctx: OracleContext) -> Optional[str]:
    """The strategy layer reproduces the legacy search, and richer
    strategies stay semantics-preserving.

    Two claims.  First, ``TransformSearch`` running the default
    ``greedy`` strategy equals :func:`repro.search.reference.
    reference_search` — the legacy loop frozen verbatim before the
    strategy refactor — on best score, lineage, full history and
    generation/evaluation counts.  Second, the portfolio strategy's
    winning design still executes identically to the input behavior on
    shared traces (racing must never surface a semantics-breaking
    design, whatever its score).
    """
    if ctx.try_schedule() is None:
        return None  # path explosion: agreed capacity limit, skip
    from ..core.search import SearchConfig, TransformSearch
    from ..search.reference import reference_search
    probs = ctx.branch_probs()
    objective = Objective(THROUGHPUT)
    transforms = default_library()
    cfg = SearchConfig(max_outer_iters=2, max_moves=1,
                       max_candidates_per_seed=6,
                       seed=ctx.seed, workers=0)

    try:
        got = TransformSearch(
            transforms, ctx.hw_library, ctx.allocation, objective,
            sched_config=ctx.sched_config, branch_probs=probs,
            config=cfg).run(ctx.behavior)
        want = reference_search(
            transforms, ctx.hw_library, ctx.allocation, objective,
            ctx.behavior, sched_config=ctx.sched_config,
            branch_probs=probs, config=cfg)
    except ScheduleError as exc:
        if _is_path_explosion(exc):
            return None
        raise
    if got.best.score != want.best.score:
        return (f"greedy best score {got.best.score!r} != reference "
                f"{want.best.score!r}")
    if got.best.lineage != want.best.lineage:
        return (f"greedy lineage {got.best.lineage} != reference "
                f"{want.best.lineage}")
    if got.history != want.history:
        return (f"greedy history diverged: "
                f"{_first_diff_scalar(want.history, got.history)}")
    if (got.generations, got.evaluated_count) != \
            (want.generations, want.evaluated_count):
        return (f"greedy counters ({got.generations}, "
                f"{got.evaluated_count}) != reference "
                f"({want.generations}, {want.evaluated_count})")

    pcfg = replace(cfg, strategy="portfolio", portfolio_size=3)
    try:
        portfolio = TransformSearch(
            transforms, ctx.hw_library, ctx.allocation, objective,
            sched_config=ctx.sched_config, branch_probs=probs,
            config=pcfg).run(ctx.behavior)
    except ScheduleError as exc:
        if _is_path_explosion(exc):
            return None
        raise
    traces = ctx.traces()
    best = portfolio.best.behavior
    for i, case in enumerate(traces):
        arrays = {k: list(v) for k, v in case.arrays.items()}
        want_run = execute(ctx.behavior, case.inputs,
                           {k: list(v) for k, v in
                            case.arrays.items()})
        got_run = execute(best, case.inputs, arrays)
        if got_run.outputs != want_run.outputs:
            return (f"portfolio best {portfolio.best.lineage}: trace "
                    f"{i} outputs {got_run.outputs} != "
                    f"{want_run.outputs}")
        if got_run.arrays != want_run.arrays:
            return (f"portfolio best {portfolio.best.lineage}: trace "
                    f"{i} final memory diverged")
    return None


def _first_diff_scalar(expect: List[float], got: List[float]) -> str:
    for i, (a, b) in enumerate(zip(expect, got)):
        if a != b:
            return f"first diff at {i}: {a!r} != {b!r}"
    return f"length mismatch {len(expect)} != {len(got)}"


#: Oracle registry, in execution order.  ``engine-backend`` spawns a
#: process pool, so the harness samples it instead of running it on
#: every circuit (see ``FuzzOptions.pool_every``).
ORACLES: Dict[str, Callable[[OracleContext], Optional[str]]] = {
    "interp-stg": oracle_interp_stg,
    "enum-parity": oracle_enum_parity,
    "rewrite-semantics": oracle_rewrite_semantics,
    "sched-incremental": oracle_sched_incremental,
    "engine-backend": oracle_engine_backend,
    "numeric-backend": oracle_numeric_backend,
    "stream-parity": oracle_stream_parity,
    "search-parity": oracle_search_parity,
}


def run_oracle(name: str, ctx: OracleContext) -> Optional[str]:
    """Run one oracle by name; raises ``KeyError`` on unknown names."""
    return ORACLES[name](ctx)


__all__ = [
    "FuzzFinding", "MAX_APPLIES", "ORACLES", "OracleContext",
    "SIM_ABS_TOL", "SIM_REL_TOL", "SIM_RUNS", "TRACE_RUNS",
    "context_for", "run_oracle",
]

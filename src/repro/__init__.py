"""repro — a reproduction of FACT (Lakshminarayana & Jha, DAC 1998).

FACT applies throughput- and power-optimizing transformations to
control-flow intensive behavioral descriptions, guided by scheduling
information and able to transcend basic-block boundaries.

Public API highlights:

* :mod:`repro.lang` — BDL behavioral-language frontend.
* :mod:`repro.cdfg` — CDFG IR, builder, interpreter, analysis.
* :mod:`repro.sched` — CFI scheduler producing state transition graphs.
* :mod:`repro.stg` — STG model and Markov performance analysis.
* :mod:`repro.power` — high-level power estimation and Vdd scaling.
* :mod:`repro.transforms` — the transformation library.
* :mod:`repro.core` — STG partitioning, the Apply_transforms search,
  and the top-level :class:`~repro.core.fact.Fact` driver.
* :mod:`repro.baselines` — M1 (no transformations) and Flamel
  (transform-first) reference flows.
* :mod:`repro.bench` — the paper's benchmark circuits and allocations.
"""

__version__ = "0.1.0"

"""repro — a reproduction of FACT (Lakshminarayana & Jha, DAC 1998).

FACT applies throughput- and power-optimizing transformations to
control-flow intensive behavioral descriptions, guided by scheduling
information and able to transcend basic-block boundaries.

The friendly entry point is the :mod:`repro.api` facade, re-exported
here::

    import repro

    behavior = repro.compile("examples/gcd.bdl")
    baseline = repro.schedule(behavior, alloc="sb1=2,cp1=1,e1=1")
    result = repro.optimize(behavior, alloc="sb1=2,cp1=1,e1=1",
                            workers=4)
    print(result.speedup, result.telemetry.summary())

Subsystems (all importable directly, as before):

* :mod:`repro.lang` — BDL behavioral-language frontend.
* :mod:`repro.cdfg` — CDFG IR, builder, interpreter, analysis.
* :mod:`repro.sched` — CFI scheduler producing state transition graphs.
* :mod:`repro.stg` — STG model and Markov performance analysis.
* :mod:`repro.power` — high-level power estimation and Vdd scaling.
* :mod:`repro.transforms` — the transformation library.
* :mod:`repro.core` — STG partitioning, the Apply_transforms search,
  the memoizing/parallel evaluation engine, and the top-level
  :class:`~repro.core.fact.Fact` driver.
* :mod:`repro.explore` — Pareto design-space exploration (joint
  throughput / power / area) with a persistent, resumable run store.
* :mod:`repro.service` — optimization-as-a-service: job queue,
  sharded multi-process campaign orchestrator (``repro serve``), and
  run-store federation (``docs/service.md``).
* :mod:`repro.obs` — structured tracing + unified metrics registry
  (``docs/observability.md``).
* :mod:`repro.baselines` — M1 (no transformations) and Flamel
  (transform-first) reference flows.
* :mod:`repro.bench` — the paper's benchmark circuits and allocations.
"""

from .api import (AllocLike, CacheStats, ExploreConfig, ExploreResult,
                  JobQueue, JobRecord, JobResult, JobSpec, JobState,
                  NULL_TRACER, ParetoFront, ReproConfig, RunStore,
                  Tracer, coerce_allocation, compile,
                  default_branch_probs, explore, optimize, result,
                  schedule, status, submit)
from .core.fact import Fact, FactConfig, FactResult
from .obs.metrics import MetricsRegistry
from .core.objectives import POWER, THROUGHPUT
from .core.search import SearchConfig, SearchResult
from .errors import ReproError
from .hw import Allocation, Library, dac98_library
from .sched.types import SchedConfig

__version__ = "0.3.0"

__all__ = [
    "Allocation", "AllocLike", "CacheStats", "ExploreConfig",
    "ExploreResult", "Fact", "FactConfig", "FactResult", "JobQueue",
    "JobRecord", "JobResult", "JobSpec", "JobState", "Library",
    "MetricsRegistry", "NULL_TRACER", "POWER", "ParetoFront",
    "ReproConfig", "ReproError", "RunStore", "SearchConfig",
    "SearchResult", "SchedConfig", "THROUGHPUT", "Tracer",
    "coerce_allocation", "compile", "dac98_library",
    "default_branch_probs", "explore", "optimize", "result",
    "schedule", "status", "submit", "__version__",
]

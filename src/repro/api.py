"""The one-stop facade: ``import repro; repro.optimize(...)``.

Callers previously juggled ``FactConfig``/``SearchConfig``/``SchedConfig``
/``Allocation`` imports from five modules; this module bundles the whole
pipeline behind three verbs and one configuration object:

* :func:`compile` — BDL source text (or a ``.bdl`` path) → ``Behavior``;
* :func:`schedule` — behavior → scheduled state transition graph;
* :func:`optimize` — behavior → FACT-optimized design (full Figure-5
  flow: profile, partition, transform-search with the memoizing /
  parallel evaluation engine);
* :func:`explore` — behavior → Pareto front over throughput, power and
  area (checkpointed, resumable, store-backed design-space
  exploration);
* :func:`submit` / :func:`status` / :func:`result` — the job-oriented
  face of the same exploration: enqueue work for a ``repro serve``
  process (possibly on another machine) and fetch the merged front
  later (see :mod:`repro.service` and ``docs/service.md``);
* :class:`ReproConfig` — one dataclass nesting ``FactConfig`` (which
  itself nests ``SearchConfig`` and ``SchedConfig``) plus the engine
  knobs (``workers``, ``cache_size``).

Everything here is re-exported from the top-level :mod:`repro` package::

    import repro

    result = repro.optimize("examples/gcd.bdl", alloc="sb1=2,cp1=1,e1=1",
                            workers=4)
    print(result.speedup, result.telemetry.cache.hit_rate)

The old import paths (``repro.core.fact.Fact`` and friends) keep
working; this facade is a thin layer over them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Union

from .cdfg.regions import Behavior
from .core.evalcache import CacheStats
from .core.fact import Fact, FactConfig, FactResult
from .core.search import SearchConfig
from .errors import ConfigError
from .explore import (ExploreConfig, ExploreResult, ExploreRunner,
                      ParetoFront, RunStore)
from .hw import Allocation, Library, dac98_library
from .lang import compile_source
from .obs.trace import NULL_TRACER, AnyTracer, Tracer
from .profiling import uniform_traces
from .profiling.traces import TraceSet
from .service.jobs import (JobQueue, JobRecord, JobResult, JobSpec,
                           JobState, PARETO, default_queue_root)
from .sched.driver import ScheduleResult, Scheduler
from .sched.types import BranchProbs, SchedConfig

#: Things accepted wherever an allocation is expected.
AllocLike = Union[Allocation, Mapping[str, int], str, None]


@dataclass
class ReproConfig:
    """Unified configuration for the whole pipeline.

    ``fact`` nests the full driver configuration (scheduling + search +
    partitioning knobs); ``sched`` / ``search`` are optional overrides
    that replace the corresponding nested sections, so the common cases
    read naturally::

        ReproConfig(search=SearchConfig(max_outer_iters=4, seed=1))
        ReproConfig(workers=4)                      # engine knob only
        ReproConfig(fact=FactConfig(vdd=3.3))       # full control

    ``workers`` / ``cache_size`` / ``incremental`` /
    ``numeric_backend`` / ``streaming``, when given, override the
    evaluation engine knobs inside the search section
    (``incremental=False`` disables region-level schedule memoization —
    same results, no reuse; ``numeric_backend="batched"`` stacks
    candidate Markov solves into blocked linear-algebra calls;
    ``streaming=True`` pipelines each generation through
    ``evaluate_stream`` instead of the barrier — all bit-identical
    results; see ``docs/performance.md`` and ``docs/pipeline.md``).

    ``trace`` attaches a :class:`~repro.obs.trace.Tracer`: the run
    records nested spans (compile / schedule / evaluate /
    search.generation / apply, ...) you can export with
    :func:`repro.obs.write_trace` — see ``docs/observability.md``.
    Tracing never changes results; ``None`` (the default) is a
    documented no-op fast path.
    """

    fact: FactConfig = field(default_factory=FactConfig)
    sched: Optional[SchedConfig] = None
    search: Optional[SearchConfig] = None
    workers: Optional[int] = None
    cache_size: Optional[int] = None
    incremental: Optional[bool] = None
    numeric_backend: Optional[str] = None
    streaming: Optional[bool] = None
    trace: Optional[AnyTracer] = None

    def resolved(self) -> FactConfig:
        """Collapse the overrides into one ``FactConfig``."""
        fact = replace(self.fact)
        if self.sched is not None:
            fact.sched = self.sched
        if self.search is not None:
            fact.search = self.search
        updates = {}
        if self.workers is not None:
            updates["workers"] = self.workers
        if self.cache_size is not None:
            updates["cache_size"] = self.cache_size
        if self.incremental is not None:
            updates["incremental"] = self.incremental
        if self.numeric_backend is not None:
            updates["numeric_backend"] = self.numeric_backend
        if self.streaming is not None:
            updates["streaming"] = self.streaming
        if updates:
            fact.search = replace(fact.search, **updates)
        return fact


def coerce_allocation(alloc: AllocLike = None) -> Allocation:
    """Normalize an allocation spec to an :class:`Allocation`.

    Accepts an ``Allocation``, a mapping ``{"a1": 2}``, a CLI-style
    string ``"a1=2,sb1=1"``, or ``None`` (a generous default: two of
    every FU type in the DAC-98 library).

    Raises:
        ConfigError: on malformed items, non-integer counts, or
            negative counts.
    """
    if alloc is None:
        return Allocation({name: 2 for name in dac98_library().fu_types})
    if isinstance(alloc, Allocation):
        return alloc
    if isinstance(alloc, Mapping):
        counts = dict(alloc)
    elif isinstance(alloc, str):
        counts = {}
        for item in alloc.split(","):
            item = item.strip()
            if not item:
                continue
            name, eq, value = item.partition("=")
            if not eq or not name.strip() or not value.strip():
                raise ConfigError(
                    f"bad allocation item {item!r}; expected name=count")
            counts[name.strip()] = value.strip()
    else:
        raise ConfigError(
            f"cannot interpret {type(alloc).__name__!r} as an allocation")
    out = {}
    for name, value in counts.items():
        try:
            count = int(value)
        except (TypeError, ValueError):
            raise ConfigError(
                f"allocation count for {name!r} must be an integer, "
                f"got {value!r}") from None
        if count < 0:
            raise ConfigError(
                f"allocation count for {name!r} must be >= 0, "
                f"got {count}")
        out[name] = count
    return Allocation(out)


def compile(source: Union[str, "os.PathLike[str]"]) -> Behavior:
    """Compile BDL source into a :class:`Behavior`.

    ``source`` may be the BDL text itself or a path to a ``.bdl`` file
    (anything without a ``{`` that names an existing file is treated as
    a path).
    """
    if isinstance(source, os.PathLike):
        source = os.fspath(source)
    if "{" not in source and os.path.exists(source):
        with open(source) as handle:
            source = handle.read()
    return compile_source(source)


def _coerce_behavior(behavior_or_source) -> Behavior:
    if isinstance(behavior_or_source, Behavior):
        return behavior_or_source
    return compile(behavior_or_source)


def schedule(behavior: Union[Behavior, str], *,
             alloc: AllocLike = None,
             config: Optional[ReproConfig] = None,
             library: Optional[Library] = None,
             branch_probs: Optional[BranchProbs] = None,
             trace: Optional[AnyTracer] = None) -> ScheduleResult:
    """Schedule a behavior (or BDL source) into a state transition graph.

    This is the M1 baseline: no transformations, one scheduler run.
    """
    beh = _coerce_behavior(behavior)
    full_cfg = config or ReproConfig()
    cfg = full_cfg.resolved()
    return Scheduler(beh, library or dac98_library(),
                     coerce_allocation(alloc), cfg.sched,
                     branch_probs,
                     tracer=trace if trace is not None
                     else full_cfg.trace).schedule()


def optimize(behavior_or_source: Union[Behavior, str], *,
             objective: str = "throughput",
             workers: Optional[int] = None,
             config: Optional[ReproConfig] = None,
             alloc: AllocLike = None,
             library: Optional[Library] = None,
             traces: Optional[TraceSet] = None,
             branch_probs: Optional[BranchProbs] = None,
             profile_traces: int = 12,
             trace: Optional[AnyTracer] = None) -> FactResult:
    """Run the full FACT flow on a behavior or BDL source.

    Args:
        behavior_or_source: a :class:`Behavior`, BDL text, or a path.
        objective: ``"throughput"`` or ``"power"``.
        workers: evaluation-engine worker processes (overrides the
            config and the ``REPRO_WORKERS`` environment variable;
            0/1 = serial).
        config: a :class:`ReproConfig` (defaults throughout otherwise).
        alloc: allocation spec (see :func:`coerce_allocation`).
        library: component library (DAC-98 library by default).
        traces: profiling traces; when neither ``traces`` nor
            ``branch_probs`` is given, ``profile_traces`` uniform random
            traces are generated and profiled.
        branch_probs: precomputed branch probabilities (skip profiling).
        trace: a :class:`~repro.obs.trace.Tracer` recording the run
            (overrides ``config.trace``); see ``docs/observability.md``.
    """
    beh = _coerce_behavior(behavior_or_source)
    cfg = config or ReproConfig()
    if workers is not None:
        cfg = replace(cfg, workers=workers)
    fact_config = cfg.resolved()
    if branch_probs is None and traces is None and profile_traces > 0:
        traces = uniform_traces(beh, profile_traces, lo=1, hi=255,
                                seed=fact_config.search.seed)
    fact = Fact(library or dac98_library(), config=fact_config,
                trace=trace if trace is not None else cfg.trace)
    return fact.optimize(beh, coerce_allocation(alloc), traces=traces,
                         objective=objective, branch_probs=branch_probs)


def default_branch_probs(behavior: Behavior,
                         profile_traces: int = 12,
                         seed: int = 0) -> Optional[BranchProbs]:
    """The facade's default profiling policy, as data.

    Generates ``profile_traces`` uniform random traces (bytes in
    [1, 255], deterministic in ``seed``) and profiles them into branch
    probabilities — exactly what :func:`optimize` and :func:`explore`
    do when given neither ``traces`` nor ``branch_probs``.  The service
    workers call this with the job's knobs so a sharded run evaluates
    under the same context (and store keys) as a local one.  Returns
    ``None`` when ``profile_traces <= 0`` (scheduler defaults apply).
    """
    if profile_traces <= 0:
        return None
    from .profiling.profiler import profile
    traces = uniform_traces(behavior, profile_traces, lo=1, hi=255,
                            seed=seed)
    return dict(profile(behavior, traces).branch_probs)


def explore(behavior_or_source: Union[Behavior, str], *,
            config: Optional[ExploreConfig] = None,
            alloc: AllocLike = None,
            library: Optional[Library] = None,
            traces: Optional[TraceSet] = None,
            branch_probs: Optional[BranchProbs] = None,
            profile_traces: int = 12,
            store: Union[RunStore, str, "os.PathLike[str]",
                         None] = None,
            checkpoint: Union[str, "os.PathLike[str]", None] = None,
            resume: bool = False,
            workers: Optional[int] = None,
            seed: Optional[int] = None,
            generations: Optional[int] = None,
            streaming: Optional[bool] = None,
            trace: Optional[AnyTracer] = None) -> JobResult:
    """Map the throughput / power / area trade-off surface.

    Runs the checkpointed Pareto exploration
    (:class:`repro.explore.ExploreRunner`) over the FACT transformation
    space and returns a :class:`~repro.service.jobs.JobResult` (the
    same shape ``repro.result(job_id)`` yields) whose ``front`` is the
    :class:`~repro.explore.ParetoFront` of every non-dominated design
    evaluated, with canonical JSON/CSV export.

    Args:
        behavior_or_source: a :class:`Behavior`, BDL text, or a path.
        config: an :class:`~repro.explore.ExploreConfig` (defaults
            throughout otherwise).
        alloc: allocation spec (see :func:`coerce_allocation`).
        library: component library (DAC-98 library by default).
        traces: profiling traces; when neither ``traces`` nor
            ``branch_probs`` is given, ``profile_traces`` uniform
            random traces are generated and profiled (the same policy
            as :func:`optimize`).
        branch_probs: precomputed branch probabilities (skip
            profiling).
        store: a :class:`~repro.explore.RunStore` or its directory;
            defaults to ``$REPRO_STORE`` or ``.repro-store``.
            Evaluations persist there and are shared across runs.
        checkpoint: checkpoint file path (default: derived from the
            store directory and the run's configuration fingerprint,
            so ``resume=True`` needs no extra bookkeeping).
        resume: continue an interrupted run from its checkpoint;
            the exploration trajectory — and the exported front — are
            bit-for-bit identical to an uninterrupted run.
        workers / seed / generations / streaming: convenience overrides
            for the corresponding ``config`` fields (``streaming``
            pipelines each generation — byte-identical fronts; see
            ``docs/pipeline.md``).
        trace: a :class:`~repro.obs.trace.Tracer` recording the run;
            traced and untraced runs export byte-identical fronts.
    """
    beh = _coerce_behavior(behavior_or_source)
    cfg = config or ExploreConfig()
    updates = {}
    if workers is not None:
        updates["workers"] = workers
    if seed is not None:
        updates["seed"] = seed
    if generations is not None:
        updates["generations"] = generations
    if streaming is not None:
        updates["streaming"] = streaming
    if updates:
        cfg = replace(cfg, **updates)
    if branch_probs is None and traces is None:
        branch_probs = default_branch_probs(
            beh, profile_traces=profile_traces,
            seed=cfg.warm_start_search().seed)
    elif branch_probs is None:
        from .profiling.profiler import profile
        branch_probs = dict(profile(beh, traces).branch_probs)
    runner = ExploreRunner(beh, coerce_allocation(alloc),
                           library=library or dac98_library(),
                           config=cfg, branch_probs=branch_probs,
                           store=store, checkpoint=checkpoint,
                           trace=trace)
    return runner.run(resume=resume)


def _job_queue(queue: Union[JobQueue, str, "os.PathLike[str]", None],
               store: Union[str, "os.PathLike[str]", None]
               ) -> JobQueue:
    if isinstance(queue, JobQueue):
        return queue
    return JobQueue(queue if queue is not None
                    else default_queue_root(store))


def submit(source: Union[str, "os.PathLike[str]"], *,
           alloc: AllocLike = None,
           objective: str = PARETO,
           queue: Union[JobQueue, str, "os.PathLike[str]",
                        None] = None,
           store: Union[str, "os.PathLike[str]", None] = None,
           seed: int = 0,
           num_seeds: int = 1,
           generations: int = 4,
           population: int = 8,
           candidates_per_seed: int = 24,
           iterations: int = 6,
           warm_start: bool = True,
           strategy: str = "greedy",
           profile_traces: int = 12,
           clock: float = 25.0) -> str:
    """Enqueue an optimization job; returns its (content-derived) id.

    ``source`` is BDL text or a ``.bdl`` path (the *text* is embedded
    in the job document, so any ``repro serve`` process sharing the
    queue — even on another machine — can run it).  Submission is
    idempotent: the same request yields the same id.  Poll with
    :func:`status`, fetch the merged front with :func:`result`, or run
    a server with ``repro serve``.
    """
    if isinstance(source, Behavior):
        raise ConfigError(
            "submit() needs BDL source text or a path, not a compiled "
            "Behavior: the job document must be executable on a "
            "machine that only shares the queue")
    if isinstance(source, os.PathLike):
        source = os.fspath(source)
    if "{" not in source and os.path.exists(source):
        with open(source) as handle:
            source = handle.read()
    alloc_spec = None
    if alloc is not None:
        alloc_obj = coerce_allocation(alloc)
        alloc_spec = ",".join(f"{name}={count}" for name, count
                              in sorted(alloc_obj.counts.items()))
    spec = JobSpec(source=source, alloc=alloc_spec,
                   objective=objective, seed=seed,
                   num_seeds=num_seeds, generations=generations,
                   population=population,
                   candidates_per_seed=candidates_per_seed,
                   iterations=iterations, warm_start=warm_start,
                   strategy=strategy,
                   profile_traces=profile_traces, clock=clock)
    return _job_queue(queue, store).submit(spec).job_id


def status(job_id: str, *,
           queue: Union[JobQueue, str, "os.PathLike[str]",
                        None] = None,
           store: Union[str, "os.PathLike[str]", None] = None
           ) -> JobRecord:
    """The queue record of a submitted job (state, timestamps,
    attempts, error)."""
    return _job_queue(queue, store).get(job_id)


def result(job_id: str, *,
           queue: Union[JobQueue, str, "os.PathLike[str]",
                        None] = None,
           store: Union[str, "os.PathLike[str]", None] = None
           ) -> JobResult:
    """The merged-front :class:`JobResult` of a finished job.

    Raises :class:`~repro.errors.ServiceError` while the job is still
    pending/running, or if it failed.
    """
    return _job_queue(queue, store).result(job_id)


__all__ = [
    "AllocLike", "CacheStats", "ExploreConfig", "ExploreResult",
    "JobQueue", "JobRecord", "JobResult", "JobSpec", "JobState",
    "NULL_TRACER", "ParetoFront", "ReproConfig", "RunStore", "Tracer",
    "coerce_allocation", "compile", "default_branch_probs", "explore",
    "optimize", "result", "schedule", "status", "submit",
]

"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CdfgError(ReproError):
    """Structural problem in a CDFG (bad edge, unknown node, type clash)."""


class CdfgValidationError(CdfgError):
    """A CDFG failed a well-formedness check."""


class InterpError(ReproError):
    """The token-passing interpreter hit an unexecutable state."""


class InterpLimitError(InterpError):
    """The interpreter exceeded its step budget (probable livelock)."""


class LangError(ReproError):
    """Base class for behavioral-language frontend errors."""


class LexError(LangError):
    """Invalid character or token in BDL source."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(LangError):
    """Syntax error in BDL source."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(LangError):
    """Well-formed syntax with an invalid meaning (undeclared variable...)."""


class ScheduleError(ReproError):
    """The scheduler could not produce a legal schedule."""


class AllocationError(ScheduleError):
    """Allocation constraints cannot implement the behavior at all."""


class StgError(ReproError):
    """Structural problem in a state transition graph."""


class MarkovError(ReproError):
    """STG probability analysis failed (e.g. no absorbing state)."""


class PowerError(ReproError):
    """Power-model failure (unknown FU type, infeasible Vdd solve)."""


class TransformError(ReproError):
    """A transformation could not be applied to the given site."""


class ConfigError(ReproError):
    """Invalid user-supplied configuration (allocation specs, knobs)."""


class SearchError(ReproError):
    """The transformation-search driver was misconfigured."""


class SynthError(ReproError):
    """RTL synthesis (binding / allocation / reporting) failure."""


class BenchError(ReproError):
    """A benchmark circuit definition is inconsistent."""


class ExploreError(ReproError):
    """Design-space exploration failure (bad config, checkpoint, store)."""


class ServiceError(ReproError):
    """Optimization-service failure (bad job spec, unknown job id,
    queue/board corruption, campaign abort)."""

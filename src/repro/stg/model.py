"""State transition graph (STG) model.

The scheduler's output (paper Figure 1(c)): a directed graph whose nodes
are controller states and whose edges are condition-labelled transitions
annotated with the probability of being taken.  Each state lists the
operations executed in it, tagged with the loop iteration they belong to
when the schedule overlaps iterations (the paper's ``S.0`` / ``++1_1``
annotations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import StgError

#: Tolerance when checking that outgoing probabilities sum to one.
PROB_TOL = 1e-6


@dataclass
class ScheduledOp:
    """One operation instance executed in a state.

    Attributes:
        node: CDFG node id.
        iteration: loop iteration offset for pipelined schedules (0 for
            the current iteration, 1 for the next, ...).
        exec_prob: probability the operation actually executes when the
            state is entered (< 1 for predicated / guarded operations).
    """

    node: int
    iteration: int = 0
    exec_prob: float = 1.0


@dataclass
class State:
    """A controller state executing a set of operations in one cycle."""

    id: int
    ops: List[ScheduledOp] = field(default_factory=list)
    label: str = ""


@dataclass
class Transition:
    """A state transition taken with probability ``prob``."""

    src: int
    dst: int
    prob: float
    label: str = ""


class Stg:
    """A state transition graph with a unique entry and exit state.

    One complete execution of the behavior is a path from ``entry`` to
    ``exit``; each state costs one clock cycle.  For throughput analysis
    the behavior restarts after ``exit`` (the expected entry→exit length
    is the paper's *average schedule length*).
    """

    def __init__(self, name: str = "stg") -> None:
        self.name = name
        self.states: Dict[int, State] = {}
        self.transitions: List[Transition] = []
        self.entry: int = -1
        self.exit: int = -1
        self._next_id = 0
        self._out: Dict[int, List[Transition]] = {}
        self._in: Dict[int, List[Transition]] = {}

    # ------------------------------------------------------------------
    def add_state(self, ops: Optional[Iterable[ScheduledOp]] = None,
                  label: str = "") -> int:
        """Create a state, returning its id."""
        sid = self._next_id
        self._next_id += 1
        self.states[sid] = State(sid, list(ops or []), label)
        self._out[sid] = []
        self._in[sid] = []
        return sid

    def add_transition(self, src: int, dst: int, prob: float,
                       label: str = "") -> Transition:
        """Add an edge ``src → dst`` taken with probability ``prob``."""
        if src not in self.states or dst not in self.states:
            raise StgError(f"transition {src}->{dst} references unknown "
                           f"state")
        if not 0.0 <= prob <= 1.0 + PROB_TOL:
            raise StgError(f"transition {src}->{dst} has probability "
                           f"{prob}")
        t = Transition(src, dst, min(prob, 1.0), label)
        self.transitions.append(t)
        self._out[src].append(t)
        self._in[dst].append(t)
        return t

    def out_edges(self, sid: int) -> List[Transition]:
        """Outgoing transitions of ``sid``."""
        return list(self._out[sid])

    def in_edges(self, sid: int) -> List[Transition]:
        """Incoming transitions of ``sid``."""
        return list(self._in[sid])

    def state_ids(self) -> List[int]:
        """All state ids, sorted."""
        return sorted(self.states)

    def __len__(self) -> int:
        return len(self.states)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity.

        * entry and exit are set and exist;
        * every non-exit state's outgoing probabilities sum to 1;
        * the exit state has no outgoing transitions;
        * every state is reachable from the entry.
        """
        if self.entry not in self.states:
            raise StgError(f"{self.name}: entry state not set")
        if self.exit not in self.states:
            raise StgError(f"{self.name}: exit state not set")
        for sid in self.states:
            outs = self._out[sid]
            if sid == self.exit:
                if outs:
                    raise StgError(
                        f"{self.name}: exit state {sid} has outgoing "
                        f"transitions")
                continue
            total = sum(t.prob for t in outs)
            if abs(total - 1.0) > 1e-4:
                raise StgError(
                    f"{self.name}: state {sid} outgoing probabilities sum "
                    f"to {total:.6f}, expected 1")
        unreachable = set(self.states) - self.reachable()
        if unreachable:
            raise StgError(
                f"{self.name}: unreachable states {sorted(unreachable)[:8]}")

    def reachable(self) -> set:
        """States reachable from the entry."""
        seen = set()
        stack = [self.entry]
        while stack:
            sid = stack.pop()
            if sid in seen or sid not in self.states:
                continue
            seen.add(sid)
            stack.extend(t.dst for t in self._out[sid])
        return seen

    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        """Render the STG as a DOT digraph string."""
        lines = [f'digraph "{self.name}" {{', "  node [shape=circle "
                 "fontsize=10];"]
        for sid in self.state_ids():
            st = self.states[sid]
            ops = ", ".join(f"{o.node}@{o.iteration}" for o in st.ops)
            label = f"S{sid}"
            if st.label:
                label += f"\\n{st.label}"
            if ops:
                label += f"\\n[{ops}]"
            shape = ("doublecircle" if sid in (self.entry, self.exit)
                     else "circle")
            lines.append(f'  s{sid} [label="{label}" shape={shape}];')
        for t in self.transitions:
            lab = f"{t.label} ({t.prob:.2f})" if t.label else f"{t.prob:.2f}"
            lines.append(f'  s{t.src} -> s{t.dst} [label="{lab}"];')
        lines.append("}")
        return "\n".join(lines)

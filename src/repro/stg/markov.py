"""Markov-chain performance analysis of STGs.

Implements the method of Bhattacharya, Dey & Brglez (the paper's
reference [10]) used throughout Section 2.2:

* **expected visits** — how many times each state is entered during one
  execution (entry → exit), from the fundamental matrix of the absorbing
  chain;
* **average schedule length** — expected cycles per execution = the sum
  of expected visits (each state is one cycle);
* **state probabilities** — the fraction of time spent in each state
  over repeated executions (Example 1's ``P_Si`` values), i.e. expected
  visits normalized by the average schedule length;
* **fragment visits** — the localized variant used by the incremental
  evaluation pipeline: solve one region's sub-chain in isolation given
  the entry mass flowing into it, so an unchanged region's totals can
  be spliced into a candidate's analysis without re-solving the whole
  system.

Observability: every linear solve can be wrapped in a ``markov.solve``
span.  Because the solvers are called from deep inside the scheduler
(and from pool workers), the tracer is installed per process with
:func:`set_tracer` rather than threaded through every call; the default
is the no-op :data:`~repro.obs.trace.NULL_TRACER`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import MarkovError
from ..numeric import get_backend
from ..obs.trace import NULL_TRACER, AnyTracer
from .model import Stg, Transition

#: Process-local tracer for markov.solve spans (see :func:`set_tracer`).
_TRACER: AnyTracer = NULL_TRACER


def set_tracer(tracer: AnyTracer) -> None:
    """Install the process-local tracer for ``markov.solve`` spans.

    Called by the evaluation engine (and by each traced pool worker's
    initializer) when tracing is enabled; pass
    :data:`~repro.obs.trace.NULL_TRACER` to disable again.
    """
    global _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER

#: Use a sparse linear solve above this many states.
SPARSE_THRESHOLD = 600
#: Refuse to analyze STGs beyond this size (degenerate schedules).
MAX_STATES = 60_000


def _sparse_solve(transitions: List[Transition], index: Dict[int, int],
                  n: int, e):
    """Sparse ``(I − Qᵀ) v = e``, assembled directly in COO triplets."""
    from scipy.sparse import coo_matrix, identity
    from scipy.sparse.linalg import spsolve
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for t in transitions:
        si = index.get(t.src)
        di = index.get(t.dst)
        if si is None or di is None:
            continue
        rows.append(di)  # transposed
        cols.append(si)
        data.append(t.prob)
    qt = coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    a = identity(n, format="csr") - qt
    return spsolve(a, e)


def _solve_visits(name: str, transitions: List[Transition],
                  index: Dict[int, int], n: int, e):
    """Solve ``v = e + Qᵀ v`` over the states in ``index``.

    ``Q`` keeps only transitions whose source *and* destination are
    indexed; everything else (the exit state, or mass leaving a
    fragment) simply drains.

    Seconds spent here accrue to the installed backend's
    ``solve_seconds`` (unless a batched flush, which times itself
    wholesale, is the caller) — the numeric-core metric
    ``EvalStats.numeric_seconds`` reports.
    """
    backend = get_backend()
    t0 = time.perf_counter()
    try:
        with _TRACER.span("markov.solve", states=n,
                          method="sparse" if n > SPARSE_THRESHOLD
                          else "dense") as span:
            try:
                if n > SPARSE_THRESHOLD:
                    v = _sparse_solve(transitions, index, n, e)
                else:
                    q = np.zeros((n, n))
                    for t in transitions:
                        si = index.get(t.src)
                        di = index.get(t.dst)
                        if si is None or di is None:
                            continue
                        q[si, di] += t.prob
                    v = np.linalg.solve(np.eye(n) - q.T, e)
            except Exception as exc:
                span.set(singular=True)
                raise MarkovError(
                    f"{name}: absorbing-chain solve failed ({exc}); the "
                    f"STG may loop forever with probability 1") from None
            if np.any(v < -1e-6):
                raise MarkovError(f"{name}: negative expected visits; "
                                  f"inconsistent probabilities")
            return v
    finally:
        if not backend._in_flush:
            backend.solve_seconds += time.perf_counter() - t0


@dataclass
class VisitSystem:
    """One assembled absorbing-chain system ``(I − Qᵀ) v = e``.

    The shared assembly product both numeric backends consume: the
    scalar backend hands it straight to :func:`_solve_visits`, the
    batched backend groups same-size systems into stacked LAPACK
    calls.  ``index`` maps state ids to matrix rows in the order the
    scalar path would have enumerated them, which is what keeps
    :func:`finish_visits` dict ordering (and every float-order
    sensitive sum downstream) backend-independent.
    """

    name: str
    transitions: List[Transition]
    index: Dict[int, int]
    n: int
    e: np.ndarray


def build_chain_system(stg: Stg) -> Optional[VisitSystem]:
    """Assemble the full-chain system :func:`expected_visits` solves.

    Returns None when there are no transient states (entry == exit);
    raises :class:`MarkovError` exactly where the scalar path would
    (unreachable exit, size limit).
    """
    stg.validate()
    if stg.exit not in stg.reachable():
        raise MarkovError(f"{stg.name}: exit state unreachable from entry")
    transient = [sid for sid in stg.state_ids() if sid != stg.exit]
    index = {sid: i for i, sid in enumerate(transient)}
    n = len(transient)
    if n == 0:
        return None
    if n > MAX_STATES:
        raise MarkovError(
            f"{stg.name}: {n} states exceeds the analysis limit "
            f"{MAX_STATES}; the schedule is degenerate")
    e = np.zeros(n)
    if stg.entry != stg.exit:
        e[index[stg.entry]] = 1.0
    return VisitSystem(stg.name, stg.transitions, index, n, e)


def build_fragment_system(stg: Stg, sources: Mapping[int, float]
                          ) -> Optional[VisitSystem]:
    """Assemble the fragment system :func:`fragment_visits` solves.

    Returns None for an empty fragment (no states); raises
    :class:`MarkovError` for unknown source states or oversized
    fragments, exactly like the scalar path.
    """
    ids = stg.state_ids()
    n = len(ids)
    if n == 0:
        return None
    if n > MAX_STATES:
        raise MarkovError(
            f"{stg.name}: {n} states exceeds the analysis limit "
            f"{MAX_STATES}; the schedule is degenerate")
    index = {sid: i for i, sid in enumerate(ids)}
    e = np.zeros(n)
    for sid, weight in sources.items():
        if sid not in index:
            raise MarkovError(
                f"{stg.name}: fragment source state {sid} does not exist")
        e[index[sid]] += weight
    return VisitSystem(stg.name, stg.transitions, index, n, e)


def finish_visits(system: VisitSystem, v) -> Dict[int, float]:
    """Solution vector → per-state visit dict (row order preserved)."""
    return {sid: max(float(v[i]), 0.0)
            for sid, i in system.index.items()}


def solve_systems(systems: Sequence[VisitSystem]
                  ) -> List[Union[np.ndarray, MarkovError]]:
    """Solve many assembled systems through the installed backend.

    Returns one entry per system: the raw solution vector, or the
    :class:`MarkovError` that system produced (captured, not raised, so
    one singular fragment cannot mask its batchmates' results).
    """
    return get_backend().solve_systems(systems)


def expected_visits(stg: Stg) -> Dict[int, float]:
    """Expected number of entries into each state per execution.

    Solves ``v = e_entry + Qᵀ v`` where ``Q`` is the transition matrix
    restricted to transient (non-exit) states; the exit state is entered
    exactly once.

    Raises:
        MarkovError: if the exit is unreachable or the chain does not
            terminate with probability 1 (singular system).
    """
    system = build_chain_system(stg)
    if system is None:
        return {stg.exit: 1.0}
    v = _solve_visits(system.name, system.transitions, system.index,
                      system.n, system.e)
    visits = finish_visits(system, v)
    visits[stg.exit] = 1.0
    return visits


def expected_visits_many(stgs: Sequence[Stg]) -> List[Dict[int, float]]:
    """:func:`expected_visits` over many STGs in one backend flush.

    Under the scalar backend this is a plain sequential loop (the
    classic path, byte for byte).  Under the batched backend every
    chain is assembled first and the solves go out as one flush; a
    failing chain's MarkovError is raised in list order, mirroring the
    scalar sequence.
    """
    if not get_backend().batched:
        return [expected_visits(stg) for stg in stgs]
    out: List[Optional[Dict[int, float]]] = [None] * len(stgs)
    systems: List[VisitSystem] = []
    where: List[int] = []
    for i, stg in enumerate(stgs):
        system = build_chain_system(stg)
        if system is None:
            out[i] = {stg.exit: 1.0}
        else:
            systems.append(system)
            where.append(i)
    for i, system, solved in zip(where, systems, solve_systems(systems)):
        if isinstance(solved, MarkovError):
            raise solved
        visits = finish_visits(system, solved)
        visits[stgs[i].exit] = 1.0
        out[i] = visits
    return out  # type: ignore[return-value]


def fragment_visits(stg: Stg, sources: Mapping[int, float]
                    ) -> Dict[int, float]:
    """Expected entries into each state of an STG *fragment*.

    The localized re-analysis primitive: ``stg`` holds one region's
    states (a relocatable schedule fragment) and ``sources`` gives the
    external entry mass per entry state — for a scheduled fragment, its
    entry-port weights.  Solves ``v = e + Qᵀ v`` over *all* fragment
    states; transitions leaving the fragment are simply absent from it,
    so their mass drains out.

    Splicing these per-fragment totals back together is exact for
    sequentially composed fragments: probability conservation delivers
    the full unit of mass to each top-level fragment per execution, so
    a fragment solved once under ``sources`` summing to 1 has the same
    visit totals wherever it is spliced.

    Raises:
        MarkovError: if a source state is unknown, the fragment exceeds
            the analysis size limit, or its internal chain does not
            drain (singular system) — callers fall back to a full
            :func:`expected_visits` solve.
    """
    system = build_fragment_system(stg, sources)
    if system is None:
        return {}
    v = _solve_visits(system.name, system.transitions, system.index,
                      system.n, system.e)
    return finish_visits(system, v)


def average_schedule_length(stg: Stg) -> float:
    """Expected cycles for one execution (entry → exit, inclusive)."""
    return float(sum(expected_visits(stg).values()))


def average_schedule_lengths(stgs: Sequence[Stg]) -> List[float]:
    """:func:`average_schedule_length` over many STGs in one flush."""
    return [float(sum(visits.values()))
            for visits in expected_visits_many(stgs)]


def state_probabilities(stg: Stg,
                        visits: Optional[Mapping[int, float]] = None
                        ) -> Dict[int, float]:
    """Long-run fraction of cycles spent in each state (Example 1).

    ``visits`` optionally supplies precomputed expected visits (e.g. a
    schedule result's memoized totals) so callers that already solved
    the chain don't solve it again.
    """
    if visits is None:
        visits = expected_visits(stg)
    total = sum(visits.values())
    if total <= 0:
        raise MarkovError(f"{stg.name}: zero total schedule length")
    return {sid: v / total for sid, v in visits.items()}


def throughput(stg: Stg) -> float:
    """Executions completed per cycle (the paper reports 1000× this)."""
    length = average_schedule_length(stg)
    if length <= 0:
        raise MarkovError(f"{stg.name}: non-positive schedule length")
    return 1.0 / length

"""Markov-chain performance analysis of STGs.

Implements the method of Bhattacharya, Dey & Brglez (the paper's
reference [10]) used throughout Section 2.2:

* **expected visits** — how many times each state is entered during one
  execution (entry → exit), from the fundamental matrix of the absorbing
  chain;
* **average schedule length** — expected cycles per execution = the sum
  of expected visits (each state is one cycle);
* **state probabilities** — the fraction of time spent in each state
  over repeated executions (Example 1's ``P_Si`` values), i.e. expected
  visits normalized by the average schedule length.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import MarkovError
from .model import Stg

#: Use a sparse linear solve above this many states.
SPARSE_THRESHOLD = 600
#: Refuse to analyze STGs beyond this size (degenerate schedules).
MAX_STATES = 60_000


def _sparse_solve(stg: Stg, index, n: int, e):
    """Sparse ``(I − Qᵀ) v = e`` for large STGs."""
    from scipy.sparse import identity, lil_matrix
    from scipy.sparse.linalg import spsolve
    q = lil_matrix((n, n))
    for t in stg.transitions:
        if t.src == stg.exit or t.dst == stg.exit:
            continue
        q[index[t.dst], index[t.src]] += t.prob  # transposed
    a = (identity(n, format="csr") - q.tocsr())
    return spsolve(a, e)


def expected_visits(stg: Stg) -> Dict[int, float]:
    """Expected number of entries into each state per execution.

    Solves ``v = e_entry + Qᵀ v`` where ``Q`` is the transition matrix
    restricted to transient (non-exit) states; the exit state is entered
    exactly once.

    Raises:
        MarkovError: if the exit is unreachable or the chain does not
            terminate with probability 1 (singular system).
    """
    stg.validate()
    if stg.exit not in stg.reachable():
        raise MarkovError(f"{stg.name}: exit state unreachable from entry")
    transient = [sid for sid in stg.state_ids() if sid != stg.exit]
    index = {sid: i for i, sid in enumerate(transient)}
    n = len(transient)
    if n == 0:
        return {stg.exit: 1.0}
    if n > MAX_STATES:
        raise MarkovError(
            f"{stg.name}: {n} states exceeds the analysis limit "
            f"{MAX_STATES}; the schedule is degenerate")
    e = np.zeros(n)
    if stg.entry != stg.exit:
        e[index[stg.entry]] = 1.0
    try:
        if n > SPARSE_THRESHOLD:
            v = _sparse_solve(stg, index, n, e)
        else:
            q = np.zeros((n, n))
            for t in stg.transitions:
                if t.src == stg.exit or t.dst == stg.exit:
                    continue
                q[index[t.src], index[t.dst]] += t.prob
            v = np.linalg.solve(np.eye(n) - q.T, e)
    except Exception as exc:
        raise MarkovError(
            f"{stg.name}: absorbing-chain solve failed ({exc}); the STG "
            f"may loop forever with probability 1") from None
    if np.any(v < -1e-6):
        raise MarkovError(f"{stg.name}: negative expected visits; "
                          f"inconsistent probabilities")
    visits = {sid: max(float(v[i]), 0.0) for sid, i in index.items()}
    visits[stg.exit] = 1.0
    return visits


def average_schedule_length(stg: Stg) -> float:
    """Expected cycles for one execution (entry → exit, inclusive)."""
    return float(sum(expected_visits(stg).values()))


def state_probabilities(stg: Stg) -> Dict[int, float]:
    """Long-run fraction of cycles spent in each state (Example 1)."""
    visits = expected_visits(stg)
    total = sum(visits.values())
    if total <= 0:
        raise MarkovError(f"{stg.name}: zero total schedule length")
    return {sid: v / total for sid, v in visits.items()}


def throughput(stg: Stg) -> float:
    """Executions completed per cycle (the paper reports 1000× this)."""
    length = average_schedule_length(stg)
    if length <= 0:
        raise MarkovError(f"{stg.name}: non-positive schedule length")
    return 1.0 / length

"""State transition graphs and their performance analysis."""

from .markov import (average_schedule_length, expected_visits,
                     state_probabilities, throughput)
from .model import ScheduledOp, State, Stg, Transition
from .simulate import WalkResult, simulate, walk_once

__all__ = [
    "ScheduledOp", "State", "Stg", "Transition", "WalkResult",
    "average_schedule_length", "expected_visits", "simulate",
    "state_probabilities", "throughput", "walk_once",
]

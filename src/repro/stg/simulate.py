"""Monte-Carlo simulation of STGs.

A seeded random walk over the transition probabilities, used to
cross-validate the closed-form Markov analysis and to generate activity
traces for the synthesis-level power simulation.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import StgError
from .model import Stg, Transition

#: Maximum tolerated float drift in a state's outgoing probability mass.
#: Rows further from 1 than this indicate a real modelling bug, not
#: accumulated rounding, and must not be silently renormalized.
ROW_SUM_TOL = 1e-3


@dataclass
class WalkResult:
    """Aggregate statistics over simulated executions."""

    runs: int
    mean_length: float
    min_length: int
    max_length: int
    state_visit_rate: Dict[int, float] = field(default_factory=dict)

    def probability_of(self, sid: int) -> float:
        """Long-run probability of being in state ``sid``."""
        return self.state_visit_rate.get(sid, 0.0)


#: One state's prepared outgoing row: ``(edges, cumulative, total)``.
_Row = Tuple[List[Transition], List[float], float]


def _state_row(stg: Stg, sid: int) -> _Row:
    """Validate and prepare one state's outgoing row.

    The cumulative list carries the same running partial sums the old
    per-step ``acc += t.prob`` loop produced (and its last element is
    the same float the old ``sum(...)`` computed), so sampling against
    it with :func:`bisect_right` picks the exact edge the linear scan
    would have — the walk is bit-identical, just without re-summing the
    row on every visit.
    """
    edges = stg.out_edges(sid)
    if not edges:
        raise StgError(f"state {sid} has no outgoing transitions")
    cumulative: List[float] = []
    acc = 0.0
    for t in edges:
        acc += t.prob
        cumulative.append(acc)
    total = cumulative[-1]
    if abs(total - 1.0) > ROW_SUM_TOL:
        raise StgError(
            f"state {sid} outgoing probabilities sum to {total:.6f}, "
            f"expected 1 (tolerance {ROW_SUM_TOL})")
    return edges, cumulative, total


def walk_once(stg: Stg, rng: random.Random,
              max_cycles: int = 1_000_000,
              table: Optional[Dict[int, _Row]] = None) -> List[int]:
    """One sampled execution path from entry to exit (inclusive).

    ``table`` memoizes per-state cumulative probability rows;
    :func:`simulate` shares one across all its runs so each state's row
    is summed and validated once per STG instead of once per step.
    """
    if table is None:
        table = {}
    path = [stg.entry]
    sid = stg.entry
    while sid != stg.exit:
        row = table.get(sid)
        if row is None:
            row = table[sid] = _state_row(stg, sid)
        edges, cumulative, total = row
        # Sample against the actual row mass: float drift within the
        # tolerance is renormalized instead of silently funnelling the
        # missing mass into the last edge (beyond-last-cumulative draws
        # clamp to the final edge, as the linear scan's fallback did).
        r = rng.random() * total
        i = bisect_right(cumulative, r)
        if i >= len(edges):
            i = len(edges) - 1
        sid = edges[i].dst
        path.append(sid)
        if len(path) > max_cycles:
            raise StgError(f"simulation exceeded {max_cycles} cycles")
    return path


def simulate(stg: Stg, runs: int = 1000, seed: int = 0,
             max_cycles: int = 1_000_000) -> WalkResult:
    """Estimate schedule-length statistics by Monte-Carlo simulation."""
    stg.validate()
    rng = random.Random(seed)
    table: Dict[int, _Row] = {}
    total = 0
    visits: Dict[int, int] = {}
    min_len: Optional[int] = None
    max_len = 0
    for _ in range(runs):
        path = walk_once(stg, rng, max_cycles, table)
        total += len(path)
        min_len = len(path) if min_len is None else min(min_len, len(path))
        max_len = max(max_len, len(path))
        for sid in path:
            visits[sid] = visits.get(sid, 0) + 1
    return WalkResult(
        runs=runs,
        mean_length=total / runs,
        min_length=min_len or 0,
        max_length=max_len,
        state_visit_rate={sid: c / total for sid, c in visits.items()},
    )

"""Monte-Carlo simulation of STGs.

A seeded random walk over the transition probabilities, used to
cross-validate the closed-form Markov analysis and to generate activity
traces for the synthesis-level power simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import StgError
from .model import Stg

#: Maximum tolerated float drift in a state's outgoing probability mass.
#: Rows further from 1 than this indicate a real modelling bug, not
#: accumulated rounding, and must not be silently renormalized.
ROW_SUM_TOL = 1e-3


@dataclass
class WalkResult:
    """Aggregate statistics over simulated executions."""

    runs: int
    mean_length: float
    min_length: int
    max_length: int
    state_visit_rate: Dict[int, float] = field(default_factory=dict)

    def probability_of(self, sid: int) -> float:
        """Long-run probability of being in state ``sid``."""
        return self.state_visit_rate.get(sid, 0.0)


def walk_once(stg: Stg, rng: random.Random,
              max_cycles: int = 1_000_000) -> List[int]:
    """One sampled execution path from entry to exit (inclusive)."""
    path = [stg.entry]
    sid = stg.entry
    while sid != stg.exit:
        edges = stg.out_edges(sid)
        if not edges:
            raise StgError(f"state {sid} has no outgoing transitions")
        total = sum(t.prob for t in edges)
        if abs(total - 1.0) > ROW_SUM_TOL:
            raise StgError(
                f"state {sid} outgoing probabilities sum to {total:.6f}, "
                f"expected 1 (tolerance {ROW_SUM_TOL})")
        # Sample against the actual row mass: float drift within the
        # tolerance is renormalized instead of silently funnelling the
        # missing mass into the last edge.
        r = rng.random() * total
        acc = 0.0
        chosen = edges[-1]
        for t in edges:
            acc += t.prob
            if r < acc:
                chosen = t
                break
        sid = chosen.dst
        path.append(sid)
        if len(path) > max_cycles:
            raise StgError(f"simulation exceeded {max_cycles} cycles")
    return path


def simulate(stg: Stg, runs: int = 1000, seed: int = 0,
             max_cycles: int = 1_000_000) -> WalkResult:
    """Estimate schedule-length statistics by Monte-Carlo simulation."""
    stg.validate()
    rng = random.Random(seed)
    total = 0
    visits: Dict[int, int] = {}
    min_len: Optional[int] = None
    max_len = 0
    for _ in range(runs):
        path = walk_once(stg, rng, max_cycles)
        total += len(path)
        min_len = len(path) if min_len is None else min(min_len, len(path))
        max_len = max(max_len, len(path))
        for sid in path:
            visits[sid] = visits.get(sid, 0) + 1
    return WalkResult(
        runs=runs,
        mean_length=total / runs,
        min_length=min_len or 0,
        max_length=max_len,
        state_visit_rate={sid: c / total for sid, c in visits.items()},
    )

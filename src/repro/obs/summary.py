"""Trace analysis: per-stage time shares and cache-rate report.

Backs ``repro trace summarize FILE``.  Works on the span-dict /
metrics-dict pair returned by :func:`repro.obs.export.load_trace`, so
it accepts both the JSONL and the Chrome export.

The headline numbers are *self times*: each span's duration minus the
duration of its direct children, aggregated by span name.  Self times
of all spans sum (per process) to the traced wall time, so the report
answers "where did the time actually go" rather than double-counting
nested stages.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["format_summary", "summarize_trace"]


def summarize_trace(spans: Sequence[Mapping[str, Any]],
                    metrics: Optional[Mapping[str, Any]] = None,
                    ) -> Dict[str, Any]:
    """Aggregate spans by name into counts / total / self time shares.

    Returns a JSON-ready document::

        {"stages": {name: {"count", "total", "self", "share"}},
         "wall": <sum of self times>,
         "span_count": <n>,
         "processes": <distinct pids>,
         "metrics": {...}}   # echoed through when provided
    """
    span_pid: Dict[Any, Any] = {doc.get("id"): doc.get("pid", 0)
                                for doc in spans if doc.get("id") is not None}
    child_time: Dict[Any, float] = {}
    for doc in spans:
        parent = doc.get("parent")
        if parent is None:
            continue
        # Spans adopted from pool workers keep their original parent id
        # but ran in another process; their duration overlaps the
        # parent's wall time instead of consuming it, so crossing a pid
        # boundary must not eat into the parent's self time.  An
        # unknown parent id keeps the old same-process assumption.
        parent_pid = span_pid.get(parent)
        if parent_pid is not None and parent_pid != doc.get("pid", 0):
            continue
        child_time[parent] = (child_time.get(parent, 0.0)
                              + float(doc.get("duration", 0.0)))
    stages: Dict[str, Dict[str, float]] = {}
    pids = set()
    for doc in spans:
        name = doc.get("name", "?")
        duration = float(doc.get("duration", 0.0))
        self_time = max(0.0, duration - child_time.get(doc.get("id"), 0.0))
        stage = stages.setdefault(name, {"count": 0, "total": 0.0,
                                         "self": 0.0})
        stage["count"] += 1
        stage["total"] += duration
        stage["self"] += self_time
        pids.add(doc.get("pid", 0))
    wall = sum(stage["self"] for stage in stages.values())
    for stage in stages.values():
        stage["share"] = stage["self"] / wall if wall else 0.0
    return {"stages": stages, "wall": wall, "span_count": len(spans),
            "processes": len(pids),
            "metrics": dict(metrics) if metrics else {}}


def _rate_lines(metrics: Mapping[str, Any]) -> List[str]:
    """Pull the cache/health gauges out of a metrics snapshot."""
    lines: List[str] = []
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    for name in sorted(gauges):
        if name.endswith(("hit_rate", "reschedule_fraction")):
            lines.append(f"  {name:<42s} {gauges[name]:7.1%}")
    for name in ("engine.evaluations", "engine.scheduled",
                 "engine.cache.hits", "engine.cache.misses",
                 "region_cache.requests", "region_cache.hits",
                 "region_cache.evictions", "markov.local",
                 "markov.reused", "markov.full"):
        if name in counters:
            value = counters[name]
            lines.append(f"  {name:<42s} {value:7g}")
    return lines


def format_summary(report: Mapping[str, Any]) -> str:
    """Render :func:`summarize_trace` output as a text table."""
    lines = [f"spans: {report['span_count']}  "
             f"processes: {report['processes']}  "
             f"traced wall (sum of self times): {report['wall']:.3f}s",
             "", f"{'stage':<24s} {'count':>6s} {'total s':>9s} "
             f"{'self s':>9s} {'share':>7s}"]
    stages = report.get("stages", {})
    for name in sorted(stages, key=lambda n: -stages[n]["self"]):
        stage = stages[name]
        lines.append(f"{name:<24s} {int(stage['count']):>6d} "
                     f"{stage['total']:>9.3f} {stage['self']:>9.3f} "
                     f"{stage['share']:>7.1%}")
    metric_lines = _rate_lines(report.get("metrics", {}))
    if metric_lines:
        lines.append("")
        lines.append("metrics:")
        lines.extend(metric_lines)
    return "\n".join(lines)

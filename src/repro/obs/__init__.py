"""Observability layer: structured tracing + unified metrics.

Zero-dependency (stdlib only).  Three pieces:

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span` /
  :data:`NULL_TRACER`: nested, attributed spans with cross-process
  shipping and re-parenting, and a hard no-op disabled path.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: counters,
  gauges and histograms that absorb the pipeline's pre-existing
  ``CacheStats`` / ``EvalStats`` structures into one sink.
* :mod:`repro.obs.export` / :mod:`repro.obs.summary` — JSONL and
  Chrome ``trace_event`` exporters, the format-sniffing loader, and
  the per-stage time-share report behind ``repro trace summarize``.

See ``docs/observability.md`` for the user guide and
``docs/architecture.md`` for where the pipeline emits spans.
"""

from .export import load_trace, write_chrome, write_jsonl, write_trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .summary import format_summary, summarize_trace
from .trace import NULL_TRACER, AnyTracer, NullTracer, Span, Tracer

__all__ = [
    "AnyTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "format_summary",
    "load_trace",
    "summarize_trace",
    "write_chrome",
    "write_jsonl",
    "write_trace",
]

"""Structured tracing: nested spans over the whole FACT pipeline.

A :class:`Tracer` records *spans* — named, timed intervals with
structured attributes — arranged in a tree by lexical nesting::

    tracer = Tracer()
    with tracer.span("optimize", objective="throughput"):
        with tracer.span("schedule") as sp:
            ...
            sp.set(states=12)

Span timestamps are wall-clock (``time.time``-based) so spans recorded
in *different processes* land on one common timeline; durations are
measured with ``time.perf_counter`` for resolution.  The span names
emitted by the pipeline are documented in ``docs/observability.md``
(``compile``, ``schedule``, ``evaluate``, ``search.generation``,
``explore.generation``, per-transform ``apply``, ``markov.solve``, …).

Cross-process aggregation: a pool worker records into its own process-
local :class:`Tracer`, ships the finished spans home as plain dicts
(:meth:`Tracer.drain_payload`, picklable), and the parent re-numbers and
**re-parents** them under its currently open span with
:meth:`Tracer.adopt`.  The original process id is preserved on every
span, so exported traces show per-worker lanes.

The disabled path is a hard no-op: :data:`NULL_TRACER` hands out one
shared, attribute-dropping span handle, so instrumented hot loops cost
one method call per span when tracing is off (guarded to < 2 % of the
quick incremental-evaluation benchmark; see
``tests/obs/test_noop_overhead.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


@dataclass
class Span:
    """One finished, named, timed interval.

    ``start`` is wall-clock seconds (epoch), ``duration`` is elapsed
    seconds, ``parent`` is the id of the enclosing span (None for a
    root), and ``pid`` is the process that recorded it.
    """

    name: str
    id: int
    parent: Optional[int]
    start: float
    duration: float
    pid: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "id": self.id, "parent": self.parent,
                "start": self.start, "duration": self.duration,
                "pid": self.pid, "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Span":
        return cls(name=doc["name"], id=doc["id"],
                   parent=doc.get("parent"), start=doc["start"],
                   duration=doc["duration"], pid=doc.get("pid", 0),
                   attrs=dict(doc.get("attrs", {})))


class _SpanHandle:
    """Context manager for one open span (single use)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_id", "_start", "_p0")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        tr = self._tracer
        self._id = tr._next_id
        tr._next_id += 1
        tr._stack.append(self._id)
        self._start = time.time()
        self._p0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._p0
        tr = self._tracer
        tr._stack.pop()
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        parent = tr._stack[-1] if tr._stack else None
        tr.spans.append(Span(self._name, self._id, parent, self._start,
                             duration, tr._pid, self._attrs))
        return False

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) structured attributes."""
        self._attrs.update(attrs)


class Tracer:
    """Records a tree of :class:`Span` objects for one process.

    Not thread-safe: each process (and each pool worker) owns its own
    tracer; cross-process spans are merged with :meth:`adopt`.
    """

    enabled = True

    def __init__(self) -> None:
        #: finished spans, in completion order (children before parents)
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 1
        self._pid = os.getpid()

    # -- recording ------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a nested span (use as a context manager)."""
        return _SpanHandle(self, name, attrs)

    @property
    def current_id(self) -> Optional[int]:
        """Id of the innermost open span (None at the top level)."""
        return self._stack[-1] if self._stack else None

    # -- cross-process shipping -----------------------------------------
    def drain_payload(self) -> Tuple[Dict[str, Any], ...]:
        """Remove and return all finished spans as picklable dicts.

        Pool workers call this after every candidate so spans ride home
        with the result instead of accumulating in the worker.
        """
        spans, self.spans = self.spans, []
        return tuple(s.as_dict() for s in spans)

    def adopt(self, payload: Sequence[Dict[str, Any]],
              parent_id: Optional[int] = None,
              root_attrs: Optional[Dict[str, Any]] = None) -> List[int]:
        """Merge spans shipped from another process (re-id, re-parent).

        Every span gets a fresh id in this tracer's namespace; spans
        whose parent is not part of the payload (the worker's roots) are
        re-parented under ``parent_id`` (default: the currently open
        span) and receive ``root_attrs``.  The originating ``pid`` is
        preserved.  Returns the new root ids.
        """
        if not payload:
            return []
        if parent_id is None:
            parent_id = self.current_id
        idmap: Dict[int, int] = {}
        for doc in payload:
            idmap[doc["id"]] = self._next_id
            self._next_id += 1
        roots: List[int] = []
        for doc in payload:
            span = Span.from_dict(doc)
            span.id = idmap[span.id]
            if span.parent is not None and span.parent in idmap:
                span.parent = idmap[span.parent]
            else:
                span.parent = parent_id
                roots.append(span.id)
                if root_attrs:
                    span.attrs.update(root_attrs)
            self.spans.append(span)
        return roots


class _NullSpanHandle:
    """The shared no-op span handle (all methods are free)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """Disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    spans: Tuple[Span, ...] = ()

    def span(self, name: str, **attrs: Any) -> _NullSpanHandle:
        return _NULL_SPAN

    @property
    def current_id(self) -> None:
        return None

    def drain_payload(self) -> Tuple[Dict[str, Any], ...]:
        return ()

    def adopt(self, payload: Sequence[Dict[str, Any]],
              parent_id: Optional[int] = None,
              root_attrs: Optional[Dict[str, Any]] = None) -> List[int]:
        return []


#: The process-wide disabled tracer; ``tracer or NULL_TRACER`` is the
#: canonical way call sites normalize an optional tracer argument.
NULL_TRACER = NullTracer()

#: Anything accepted where a tracer is expected.
AnyTracer = Union[Tracer, NullTracer]

"""The metrics registry: one sink for every subsystem's counters.

Before this layer existed, the pipeline's counters lived in four
disconnected structures — the evaluation engine's
:class:`~repro.core.evalcache.CacheStats`, the incremental scheduler's
:class:`~repro.core.telemetry.EvalStats`, the explorer's
:class:`~repro.core.telemetry.ExploreTelemetry` and the run store's
``CacheStats`` — with no common export.  A :class:`MetricsRegistry`
unifies them: *counters* (monotone sums), *gauges* (last-written
values) and *histograms* (count/total/min/max of observations), all
addressed by dotted names (``engine.cache.hits``,
``region_cache.requests``, ``markov.solves``).

Aggregation across pool workers is inherited from how the engine ships
per-candidate :class:`~repro.core.telemetry.EvalStats` deltas home: the
registry built by :meth:`repro.core.engine.EvaluationEngine.
metrics_registry` derives region-cache totals from those aggregated
deltas rather than reading any single process-local cache object, so
a parallel run's totals include every worker's activity (the
pre-registry ``--stats`` path read worker-local counters and
under-reported pool runs; see
``tests/core/test_stats_aggregation.py``).

Registries serialize with :meth:`MetricsRegistry.as_dict` (embedded in
exported traces, consumed by ``repro trace summarize``) and combine
with :meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically growing sum (ints or seconds)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value!r})"


class Gauge:
    """A last-written value (rates, sizes, configuration)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value!r})"


class Histogram:
    """Count / total / min / max over observed values.

    Deliberately bucket-free: the pipeline's distributions (per-
    candidate scheduling seconds, span durations) are summarized by the
    trace tooling, which has the raw spans; the histogram keeps the
    cheap aggregates that survive merging.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
                "mean": self.mean}


class MetricsRegistry:
    """Named counters, gauges and histograms with merge + export."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access (create on first use) -----------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # -- shorthands ------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default: float = 0.0) -> float:
        """Counter-then-gauge lookup (for report tooling)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return default

    # -- absorption of the legacy structures -----------------------------
    def absorb_cache_stats(self, prefix: str, stats: Any) -> None:
        """Fold a :class:`~repro.core.evalcache.CacheStats` in.

        Counters ``<prefix>.hits`` / ``.misses`` / ``.evictions`` /
        ``.requests`` plus the derived ``<prefix>.hit_rate`` gauge.
        """
        self.inc(f"{prefix}.hits", stats.hits)
        self.inc(f"{prefix}.misses", stats.misses)
        self.inc(f"{prefix}.evictions", stats.evictions)
        self.inc(f"{prefix}.requests", stats.hits + stats.misses)
        self.set(f"{prefix}.hit_rate", stats.hit_rate)

    def absorb_eval_stats(self, stats: Any) -> None:
        """Fold an (aggregated) :class:`~repro.core.telemetry.EvalStats`
        in, under the canonical dotted names.

        EvalStats is the structure the engine aggregates from per-
        candidate deltas shipped home by pool workers, so the totals
        folded in here are backend-independent — unlike counters read
        off any single process-local region cache.
        """
        self.inc("engine.scheduled", stats.scheduled)
        self.inc("engine.sched_seconds", stats.sched_time)
        self.inc("region_cache.requests", stats.region_requests)
        self.inc("region_cache.hits", stats.region_hits)
        self.inc("region_cache.misses",
                 stats.region_requests - stats.region_hits)
        self.inc("region_cache.evictions", stats.region_evictions)
        self.set("region_cache.hit_rate", stats.region_hit_rate)
        self.inc("stg.states_built", stats.states_built)
        self.inc("stg.states_reused", stats.states_reused)
        self.set("engine.reschedule_fraction", stats.reschedule_fraction)
        self.inc("markov.local", stats.markov_local)
        self.inc("markov.reused", stats.markov_reused)
        self.inc("markov.full", stats.markov_full)
        self.inc("markov.solver_seconds", stats.solver_time)
        self.inc("numeric.flushes", stats.numeric_flushes)
        self.inc("numeric.batched_systems", stats.numeric_batched)
        self.inc("numeric.solve_seconds", stats.numeric_seconds)
        self.set("numeric.systems_per_flush",
                 stats.numeric_batched / stats.numeric_flushes
                 if stats.numeric_flushes > 0 else 0.0)

    def absorb_stream_stats(self, stats: Any) -> None:
        """Fold a :class:`~repro.stream.StreamStats` in.

        Admission counters under ``stream.*`` plus the two queue-depth
        gauges a streaming run watches for backpressure: peak in-flight
        window occupancy and peak in-order-commit reorder depth.
        """
        self.inc("stream.enqueued", stats.enqueued)
        self.inc("stream.submitted", stats.submitted)
        self.inc("stream.completed", stats.completed)
        self.inc("stream.cache_hits", stats.cache_hits)
        self.inc("stream.merged", stats.merged)
        self.inc("stream.flushes", stats.flushes)
        self.inc("stream.speculated", stats.speculated)
        self.inc("stream.shed", stats.shed)
        self.inc("stream.carried", stats.carried)
        self.inc("stream.adopted", stats.adopted)
        self.set("stream.max_inflight", stats.max_inflight)
        self.set("stream.max_reorder_depth", stats.max_reorder_depth)

    # -- merge / export --------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges overwrite,
        histograms combine)."""
        for name, c in other._counters.items():
            self.inc(name, c.value)
        for name, g in other._gauges.items():
            self.set(name, g.value)
        for name, h in other._histograms.items():
            mine = self.histogram(name)
            mine.count += h.count
            mine.total += h.total
            for bound in (h.min, h.max):
                if bound is not None:
                    mine.min = bound if mine.min is None \
                        else min(mine.min, bound)
                    mine.max = bound if mine.max is None \
                        else max(mine.max, bound)

    def merge_dict(self, doc: Mapping[str, Any]) -> None:
        """Fold an :meth:`as_dict` document in (the picklable twin of
        :meth:`merge`, used for snapshots shipped across processes)."""
        for name, value in doc.get("counters", {}).items():
            self.inc(name, value)
        for name, value in doc.get("gauges", {}).items():
            self.set(name, value)
        for name, h in doc.get("histograms", {}).items():
            mine = self.histogram(name)
            mine.count += h.get("count", 0)
            mine.total += h.get("total", 0.0)
            if h.get("count"):
                for key, pick in (("min", min), ("max", max)):
                    bound = h.get(key)
                    current = getattr(mine, key)
                    setattr(mine, key, bound if current is None
                            else pick(current, bound))

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (embedded in exported traces)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value
                       for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def summary(self) -> str:
        """Multi-line human-readable dump (``--stats`` appendix)."""
        lines = []
        for name, c in sorted(self._counters.items()):
            value = c.value
            text = f"{value:.6g}" if isinstance(value, float) \
                and not value.is_integer() else f"{int(value)}"
            lines.append(f"  {name} = {text}")
        for name, g in sorted(self._gauges.items()):
            lines.append(f"  {name} = {g.value:.4f}")
        for name, h in sorted(self._histograms.items()):
            lines.append(f"  {name}: n={h.count} mean={h.mean:.6f} "
                         f"max={h.max if h.max is not None else 0.0:.6f}")
        return "\n".join(lines)

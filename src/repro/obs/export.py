"""Trace exporters and loaders (JSONL and Chrome ``trace_event``).

Two on-disk formats, one logical document — a list of spans plus an
optional metrics snapshot:

* **JSONL** — line-delimited JSON, one record per line, each tagged
  with a ``type``: a ``meta`` header, one ``span`` record per finished
  span (the :meth:`repro.obs.trace.Span.as_dict` shape), and a final
  ``metrics`` record holding a
  :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` snapshot.  Easy to
  grep, stream and diff.
* **Chrome** — the Chrome ``trace_event`` JSON-object format (complete
  ``"ph": "X"`` events, microsecond ``ts``/``dur``), loadable directly
  in ``chrome://tracing`` or https://ui.perfetto.dev.  Spans from pool
  workers keep their originating pid, so workers render as separate
  process lanes.  The metrics snapshot rides in ``otherData``.

:func:`load_trace` sniffs the format back, so ``repro trace summarize``
accepts either file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .trace import Span

__all__ = ["load_trace", "write_chrome", "write_jsonl", "write_trace"]

#: Bumped when the record shapes change incompatibly.
TRACE_SCHEMA = 1

SpanLike = Union[Span, Dict[str, Any]]


def _span_dicts(spans: Sequence[SpanLike]) -> List[Dict[str, Any]]:
    return [s.as_dict() if isinstance(s, Span) else dict(s)
            for s in spans]


def write_jsonl(path: str, spans: Sequence[SpanLike],
                metrics: Optional[Dict[str, Any]] = None) -> None:
    """Write spans (+ optional metrics snapshot) as JSONL."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "meta",
                                 "schema": TRACE_SCHEMA,
                                 "format": "repro-trace"}) + "\n")
        for doc in _span_dicts(spans):
            doc["type"] = "span"
            handle.write(json.dumps(doc, sort_keys=True) + "\n")
        if metrics is not None:
            handle.write(json.dumps({"type": "metrics",
                                     "data": metrics},
                                    sort_keys=True) + "\n")


def write_chrome(path: str, spans: Sequence[SpanLike],
                 metrics: Optional[Dict[str, Any]] = None) -> None:
    """Write spans in Chrome ``trace_event`` format.

    Timestamps are microseconds relative to the earliest span, so the
    trace opens at t=0 regardless of wall-clock epoch; span ids and
    parent links are preserved under ``args`` for tooling that wants
    the tree rather than the timeline.
    """
    docs = _span_dicts(spans)
    base = min((d["start"] for d in docs), default=0.0)
    events = []
    for d in docs:
        args = {"id": d["id"], "parent": d.get("parent")}
        args.update(d.get("attrs", {}))
        events.append({
            "name": d["name"],
            "cat": "repro",
            "ph": "X",
            "ts": (d["start"] - base) * 1e6,
            "dur": d["duration"] * 1e6,
            "pid": d.get("pid", 0),
            "tid": d.get("pid", 0),
            "args": args,
        })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro-trace", "schema": TRACE_SCHEMA,
                      "metrics": metrics or {}},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, sort_keys=True)


def write_trace(path: str, spans: Sequence[SpanLike],
                metrics: Optional[Dict[str, Any]] = None,
                format: str = "jsonl") -> None:
    """Dispatch on ``format`` (``"jsonl"`` or ``"chrome"``)."""
    if format == "chrome":
        write_chrome(path, spans, metrics)
    elif format == "jsonl":
        write_jsonl(path, spans, metrics)
    else:
        raise ValueError(f"unknown trace format {format!r}; "
                         f"expected 'jsonl' or 'chrome'")


def load_trace(path: str) -> Tuple[List[Dict[str, Any]],
                                   Dict[str, Any]]:
    """Load either trace format back to ``(span dicts, metrics)``.

    Chrome traces are converted back to the span-dict shape (seconds,
    ids and parents recovered from ``args``), so downstream tooling —
    the summarizer, the tests — sees one representation.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        return [], {}
    first = json.loads(stripped.splitlines()[0])
    if isinstance(first, dict) and "traceEvents" in first:
        doc = json.loads(stripped)
        spans = []
        for event in doc.get("traceEvents", []):
            args = dict(event.get("args", {}))
            span_id = args.pop("id", None)
            parent = args.pop("parent", None)
            spans.append({
                "name": event.get("name", ""),
                "id": span_id,
                "parent": parent,
                "start": event.get("ts", 0.0) / 1e6,
                "duration": event.get("dur", 0.0) / 1e6,
                "pid": event.get("pid", 0),
                "attrs": args,
            })
        metrics = doc.get("otherData", {}).get("metrics", {})
        return spans, metrics
    spans = []
    metrics: Dict[str, Any] = {}
    for line in stripped.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.pop("type", "span")
        if kind == "span":
            spans.append(record)
        elif kind == "metrics":
            metrics = record.get("data", {})
    return spans, metrics

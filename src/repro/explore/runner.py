"""Checkpointed, resumable Pareto exploration.

The runner drives an NSGA-II-style generational loop over the FACT
transformation space:

1. the input behavior is evaluated (its average schedule length becomes
   the Vdd-scaling baseline for the power objective);
2. optionally, two **warm-start** searches — the existing single-
   objective ``Apply_transforms`` flow, one run per objective — seed
   the population with the designs ``repro.optimize`` would find, so
   the front's endpoints never trail the single-objective results under
   the same seed and budget;
3. each generation expands the population through the shared
   :func:`repro.core.search.expand_candidates` step, evaluates every
   candidate through the persistent :class:`~repro.explore.store
   .RunStore` (misses are scheduled by the PR-1
   :class:`~repro.core.engine.EvaluationEngine`, fanning out across its
   ``ProcessPoolExecutor`` when ``workers >= 2``), folds the results
   into the elitist :class:`~repro.explore.pareto.ParetoFront` archive,
   and selects the next population by non-dominated sorting + crowding
   distance.

**Determinism / resume contract**: the trajectory is a pure function of
(seed, config, evaluation context).  After every generation the full
loop state — RNG state, population (with behaviors), archive, telemetry
records — is pickled atomically to the checkpoint file.  SIGINT sets a
flag; the loop finishes the generation in flight, flushes the
checkpoint, and returns cleanly (a second SIGINT aborts immediately;
the checkpoint of the last *completed* generation is still on disk).
``resume=True`` restores the state and continues bit-for-bit: the
exported front of an interrupted-and-resumed run is byte-identical to
an uninterrupted run with the same seed.
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import threading
import time
import warnings
from dataclasses import astuple, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cdfg.ir import _digest
from ..cdfg.regions import Behavior
from ..errors import ExploreError, ReproError
from ..hw import Allocation, Library, dac98_library
from ..obs.trace import NULL_TRACER, AnyTracer
from ..power.model import estimate_power
from ..sched.types import BranchProbs, SchedConfig
from ..synth.area import total_area
from ..transforms import TransformLibrary, default_library
from ..core.engine import (Evaluated, EvaluationEngine,
                           context_fingerprint)
from ..sched.regioncache import RegionScheduleCache
from ..core.evalcache import CacheStats, behavior_fingerprint
from ..core.fact import Fact, FactConfig
from ..core.objectives import POWER, THROUGHPUT, Objective
from ..core.search import SearchConfig, expand_candidates
from ..core.telemetry import EvalStats, ExploreTelemetry
from ..rewrite.driver import RewriteDriver
from ..service.jobs import JobResult, JobState
from .pareto import (DesignMetrics, DesignPoint, ParetoFront,
                     nsga2_select, objectives_from_metrics)
from .store import (RunStore, RunStoreWarning, StoredEval,
                    atomic_write_bytes, default_store_root)

#: Version stamp of the pickled checkpoint documents.  Bumped to 2 when
#: the telemetry records grew incremental-evaluation fields (old
#: checkpoints would unpickle into the new dataclasses inconsistently).
CHECKPOINT_SCHEMA = 2


@dataclass
class ExploreConfig:
    """Tuning knobs for one exploration run.

    ``search`` is the budget handed to the warm-start single-objective
    searches (default: a :class:`SearchConfig` sharing ``seed`` /
    ``workers`` / ``cache_size``); everything else shapes the
    multi-objective loop itself.
    """

    generations: int = 4
    population_size: int = 8
    max_candidates_per_seed: int = 24
    seed: int = 0
    workers: Optional[int] = None
    cache_size: int = 4096
    warm_start: bool = True
    #: Which single-objective searches seed the front.  The service
    #: layer runs each as its own shard (``warm_start_objectives=
    #: (THROUGHPUT,)`` with ``generations=0`` is a pure endpoint run).
    warm_start_objectives: Tuple[str, ...] = (THROUGHPUT, POWER)
    sched: SchedConfig = field(default_factory=SchedConfig)
    search: Optional[SearchConfig] = None
    vdd: float = 5.0
    vt: float = 1.0
    cycle_time: float = 1.0
    incremental: bool = True
    incremental_enumeration: bool = True
    numeric_backend: str = "scalar"
    #: stream each generation through the engine's pipeline (results
    #: byte-identical to the barrier path; see docs/pipeline.md)
    streaming: bool = False
    #: seed the initial population from the nearest prior run's front
    #: in the store's transfer index (``--warm-start`` on the CLI;
    #: docs/search.md).  Fronts are *recorded* unconditionally at every
    #: successful run end; this knob only controls adoption.
    warm_start_transfer: bool = False
    #: how many transferred designs may join the initial population
    transfer_seeds: int = 4

    def warm_start_search(self) -> SearchConfig:
        """The warm-start budget (explicit, or derived from the knobs)."""
        if self.search is not None:
            return self.search
        return SearchConfig(
            seed=self.seed, workers=self.workers,
            cache_size=self.cache_size,
            incremental=self.incremental,
            incremental_enumeration=self.incremental_enumeration,
            numeric_backend=self.numeric_backend,
            streaming=self.streaming)

    def identity(self) -> Tuple:
        """Everything that shapes the search trajectory (for the run
        fingerprint; ``generations`` is deliberately excluded so a
        finished run can be extended by resuming with a higher cap).
        ``incremental`` / ``incremental_enumeration`` / ``streaming`` /
        the numeric backend and the cache sizes are normalized out: all
        evaluation and enumeration modes produce identical trajectories
        by construction, so a run checkpointed in one mode can resume in
        the other."""
        return (self.population_size, self.max_candidates_per_seed,
                self.seed, self.warm_start,
                astuple(replace(self.warm_start_search(),
                                incremental=True,
                                region_cache_size=4096,
                                incremental_enumeration=True,
                                enum_cache_size=512,
                                numeric_backend="scalar",
                                streaming=False)),
                self.vdd, self.vt, self.cycle_time,
                tuple(self.warm_start_objectives),
                self.warm_start_transfer, self.transfer_seeds)


class ExploreResult(JobResult):
    """Deprecated alias of :class:`repro.service.jobs.JobResult`.

    Exploration runs now report through the service layer's one public
    result shape.  This subclass keeps the pre-service constructor
    signature (``interrupted`` flag, ``checkpoint_path``) working, with
    a :class:`DeprecationWarning`; isinstance checks against
    ``ExploreResult`` keep passing for results built through it, and
    results returned by :meth:`ExploreRunner.run` are plain
    :class:`JobResult` objects.
    """

    def __init__(self, front: ParetoFront, generations: int = 0,
                 interrupted: bool = False,
                 telemetry: Optional[ExploreTelemetry] = None,
                 store_stats: Optional[CacheStats] = None,
                 checkpoint_path: Union[str, "os.PathLike[str]"] = "",
                 **kwargs) -> None:
        warnings.warn(
            "ExploreResult is deprecated; exploration returns "
            "repro.JobResult (state instead of interrupted, "
            "checkpoint instead of checkpoint_path)",
            DeprecationWarning, stacklevel=2)
        state = (JobState.CANCELLED if interrupted else JobState.DONE)
        super().__init__(front=front, state=state,
                         generations=generations, telemetry=telemetry,
                         store_stats=store_stats,
                         checkpoint=str(checkpoint_path), **kwargs)


class ExploreRunner:
    """Runs (and resumes) the multi-objective exploration loop."""

    def __init__(self, behavior: Behavior, allocation: Allocation, *,
                 library: Optional[Library] = None,
                 transforms: Optional[TransformLibrary] = None,
                 config: Optional[ExploreConfig] = None,
                 branch_probs: Optional[BranchProbs] = None,
                 store: Union[RunStore, str, "os.PathLike[str]",
                              None] = None,
                 checkpoint: Union[str, "os.PathLike[str]",
                                   None] = None,
                 checkpoint_path: Union[str, "os.PathLike[str]",
                                        None] = None,
                 trace: Optional[AnyTracer] = None) -> None:
        if checkpoint_path is not None:
            warnings.warn(
                "ExploreRunner(checkpoint_path=...) is deprecated; "
                "pass checkpoint=... instead",
                DeprecationWarning, stacklevel=2)
            if checkpoint is None:
                checkpoint = checkpoint_path
        self.behavior = behavior
        self.allocation = allocation
        self.library = library or dac98_library()
        self.transforms = transforms or default_library()
        self.config = config or ExploreConfig()
        self.branch_probs = branch_probs
        #: tracer for explore.generation / evaluate spans; tracing only
        #: reads clocks, so traced and untraced runs (and their
        #: checkpoints and exported fronts) are byte-identical.
        self.tracer: AnyTracer = trace if trace is not None \
            else NULL_TRACER
        if isinstance(store, RunStore):
            self.store = store
        else:
            self.store = RunStore(store if store is not None
                                  else default_store_root())
        self._context_fp = context_fingerprint(
            self.library, allocation, self.config.sched, branch_probs)
        # Per-context region-schedule caches (see Fact): the warm-start
        # searches and every generation of the main loop share one, so
        # a unit scheduled during warm start is never rebuilt later.
        self._region_caches: Dict[str, RegionScheduleCache] = {}
        #: rewrite driver owning candidate enumeration for the main
        #: loop (memoized per behavior, incremental for its children);
        #: shared across generations and across resume.
        self.driver = RewriteDriver(
            self.transforms,
            incremental=self.config.incremental_enumeration,
            cache_size=self.config.warm_start_search().enum_cache_size,
            tracer=self.tracer)
        self.run_fingerprint = _digest(
            (self._context_fp + "|"
             + repr(self.config.identity())).encode()).hexdigest()
        if checkpoint is not None:
            self.checkpoint = Path(checkpoint)
        else:
            self.checkpoint = (self.store.root / "runs"
                               / f"{self.run_fingerprint}.ckpt")
        self._stop_requested = False
        # Behaviors for current front/population members, keyed by
        # design fingerprint.  The front archives *stripped* points
        # (no behavior), so the transfer index resolves behaviors
        # here; pruned every generation to front + population.
        self._transfer_pool: Dict[
            str, Tuple[Behavior, Tuple[str, ...]]] = {}

    @property
    def checkpoint_path(self) -> Path:
        """Deprecated: use :attr:`checkpoint`."""
        warnings.warn(
            "ExploreRunner.checkpoint_path is deprecated; use "
            "runner.checkpoint instead", DeprecationWarning,
            stacklevel=2)
        return self.checkpoint

    # ------------------------------------------------------------------
    def _region_cache(self) -> RegionScheduleCache:
        """The shared region-schedule cache of this runner's context."""
        cache = self._region_caches.get(self._context_fp)
        if cache is None:
            cache = RegionScheduleCache(
                max_entries=self.config.warm_start_search()
                .region_cache_size,
                context_fp=self._context_fp)
            self._region_caches[self._context_fp] = cache
        return cache

    def request_stop(self) -> None:
        """Ask the loop to checkpoint and return after the current
        generation (what the SIGINT handler calls)."""
        self._stop_requested = True

    def run(self, resume: bool = False) -> JobResult:
        """Explore; returns the front found within the generation cap.

        With ``resume=True`` and an existing checkpoint, continues the
        interrupted run; without a checkpoint it starts fresh.  The
        result is a :class:`~repro.service.jobs.JobResult` whose
        ``state`` is ``DONE``, or ``CANCELLED`` for an interrupted run
        (resumable from the checkpoint).
        """
        cfg = self.config
        region_cache = self._region_cache() if cfg.incremental else None
        engine = EvaluationEngine(
            self.library, self.allocation, Objective(THROUGHPUT),
            sched_config=cfg.sched, branch_probs=self.branch_probs,
            workers=cfg.workers, cache_size=cfg.cache_size,
            incremental=cfg.incremental, region_cache=region_cache,
            numeric_backend=cfg.numeric_backend,
            tracer=self.tracer)
        telemetry = ExploreTelemetry(backend=engine.backend,
                                     workers=max(engine.workers, 1),
                                     store=self.store.stats,
                                     cache=engine.stats)
        interrupted = False
        front: Optional[ParetoFront] = None
        generation = 0
        previous_handler = self._install_sigint()
        run_start_rewrite = self.driver.stats.copy()
        telemetry.start()
        try:
            with engine, self.tracer.span("explore",
                                          behavior=self.behavior.name):
                state = self._load_checkpoint() if resume else None
                if state is not None:
                    rng = random.Random()
                    rng.setstate(state["rng_state"])
                    generation = state["generation"]
                    population = state["population"]
                    self._transfer_pool = {
                        p.fingerprint: (p.behavior, tuple(p.lineage))
                        for p in population if p.behavior is not None}
                    baseline_length = state["baseline_length"]
                    front = ParetoFront(baseline_length=baseline_length,
                                        points=state["front"])
                    telemetry.generations = list(state["records"])
                else:
                    rng = random.Random(cfg.seed)
                    generation = 0
                    baseline_length, population, front = \
                        self._bootstrap(engine)
                    self._save_checkpoint(generation, rng, population,
                                          front, telemetry,
                                          baseline_length)
                while generation < cfg.generations:
                    if self._stop_requested:
                        interrupted = True
                        break
                    with self.tracer.span("explore.generation",
                                          index=generation) as gen_span:
                        t0 = time.perf_counter()
                        hits_before = self.store.stats.hits
                        stats_before = engine.eval_stats.minus(
                            EvalStats())
                        seeds = [(p.behavior, p.lineage)
                                 for p in population
                                 if p.behavior is not None]
                        pairs = expand_candidates(
                            self.transforms, seeds, rng,
                            max_per_seed=cfg.max_candidates_per_seed,
                            driver=self.driver,
                            tracer=self.tracer)
                        if cfg.streaming:
                            points, scheduled = \
                                self._evaluate_pairs_streaming(
                                    pairs, engine, baseline_length,
                                    front, population, rng,
                                    speculate=(generation + 1
                                               < cfg.generations))
                        else:
                            points, scheduled = self._evaluate_pairs(
                                pairs, engine, baseline_length)
                        # Streaming already admitted every point via
                        # front.add in pair order; re-offering them is
                        # idempotent, so one update call serves both.
                        front.update(points)
                        population = self._next_population(population,
                                                           points)
                        self._prune_transfer_pool(front, population)
                        generation += 1
                        gen_stats = engine.eval_stats.minus(stats_before)
                        gen_span.set(
                            candidates=len(pairs), scheduled=scheduled,
                            store_hits=(self.store.stats.hits
                                        - hits_before),
                            front_size=len(front),
                            hypervolume=round(
                                front.hypervolume_proxy(), 6),
                            reschedule_fraction=round(
                                gen_stats.reschedule_fraction, 4))
                        telemetry.record_generation(
                            wall_time=time.perf_counter() - t0,
                            candidates=len(pairs), scheduled=scheduled,
                            store_hits=(self.store.stats.hits
                                        - hits_before),
                            front_size=len(front),
                            hypervolume=front.hypervolume_proxy(),
                            reschedule_fraction=(
                                gen_stats.reschedule_fraction),
                            solver_time=gen_stats.solver_time)
                        self._save_checkpoint(generation, rng,
                                              population, front,
                                              telemetry,
                                              baseline_length)
                if not interrupted and not self._stop_requested:
                    # Publish this run's front for future warm-start
                    # transfer (recording is unconditional; adoption is
                    # opt-in via warm_start_transfer).
                    self._record_transfer(front)
        except KeyboardInterrupt:
            # A second SIGINT (or one outside our handler's reach)
            # lands here: the checkpoint of the last completed
            # generation is already on disk.
            interrupted = True
        finally:
            self._restore_sigint(previous_handler)
            telemetry.eval = engine.eval_stats
            telemetry.rewrite = self.driver.stats.minus(
                run_start_rewrite)
            if cfg.streaming:
                telemetry.stream = engine.stream_stats
            telemetry.finish()
        if front is None:
            raise ExploreError(
                "interrupted before the first evaluation completed; "
                "nothing to checkpoint")
        return JobResult(front=front,
                         state=(JobState.CANCELLED if interrupted
                                else JobState.DONE),
                         generations=generation, telemetry=telemetry,
                         store_stats=self.store.stats,
                         checkpoint=str(self.checkpoint))

    # -- bootstrap ------------------------------------------------------
    def _bootstrap(self, engine: EvaluationEngine
                   ) -> Tuple[float, List[DesignPoint], ParetoFront]:
        """Evaluate the input (the baseline) and the warm starts."""
        cfg = self.config
        key, record = self._resolve_one(self.behavior, engine)
        if not record.feasible:
            raise ExploreError(
                "the input behavior itself cannot be scheduled under "
                "the given allocation")
        baseline_length = record.metrics.length
        front = ParetoFront(baseline_length=baseline_length)
        population = [self._point(key, self.behavior, (), record,
                                  baseline_length)]
        front.add(population[0])
        if cfg.warm_start:
            fact = Fact(self.library, self.transforms, FactConfig(
                sched=cfg.sched, search=cfg.warm_start_search(),
                vdd=cfg.vdd, vt=cfg.vt),
                region_caches=self._region_caches,
                trace=self.tracer)
            for objective in cfg.warm_start_objectives:
                result = fact.optimize(self.behavior, self.allocation,
                                       objective=objective,
                                       branch_probs=self.branch_probs)
                best = result.best
                k, rec = self._resolve_one(best.behavior, engine)
                if not rec.feasible:
                    continue
                point = self._point(k, best.behavior, best.lineage,
                                    rec, baseline_length)
                front.add(point)
                population.append(point)
        if cfg.warm_start_transfer:
            population.extend(self._transfer_bootstrap(
                engine, front, baseline_length, population))
        return baseline_length, population, front

    # -- warm-start transfer --------------------------------------------
    def _transfer_features(self) -> Dict[str, float]:
        """This run's context coordinate in the transfer index: the
        knobs a user typically sweeps between campaigns (supply
        voltage, threshold, cycle time, clock and the per-FU
        allocation).  The library and circuit are pinned separately —
        transfer candidates must share the input behavior fingerprint."""
        cfg = self.config
        features: Dict[str, float] = {
            "vdd": cfg.vdd, "vt": cfg.vt,
            "cycle_time": cfg.cycle_time,
            "clock": cfg.sched.clock,
        }
        for name, count in sorted(self.allocation.counts.items()):
            features[f"alloc.{name}"] = float(count)
        return features

    def _transfer_bootstrap(self, engine: EvaluationEngine,
                            front: ParetoFront, baseline_length: float,
                            population: Sequence[DesignPoint]
                            ) -> List[DesignPoint]:
        """Adopt the nearest prior run's front as extra seeds.

        Every transferred behavior is *re-evaluated under this run's
        context* (via the store, so already-known designs cost one
        lookup): the prior front's metrics are meaningless here, only
        its rewritten behaviors carry over.  Infeasible or duplicate
        designs are skipped; at most ``transfer_seeds`` join.
        """
        cfg = self.config
        doc = self.store.nearest_transfer(
            behavior_fingerprint(self.behavior),
            self._transfer_features(), exclude=self.run_fingerprint)
        if doc is None:
            return []
        entries = self.store.load_transfer(str(doc["run"]))
        if not entries:
            return []
        have = {p.fingerprint for p in population}
        adopted: List[DesignPoint] = []
        with self.tracer.span("explore.transfer",
                              source=str(doc["run"])[:12]) as span:
            for behavior, lineage in entries:
                if len(adopted) >= cfg.transfer_seeds:
                    break
                key, record = self._resolve_one(behavior, engine)
                if key in have or not record.feasible:
                    continue
                have.add(key)
                point = self._point(key, behavior, lineage, record,
                                    baseline_length)
                front.add(point)
                adopted.append(point)
            span.set(offered=len(entries), adopted=len(adopted))
        return adopted

    def _prune_transfer_pool(self, front: ParetoFront,
                             population: Sequence[DesignPoint]) -> None:
        live = {p.fingerprint for p in front.sorted_points()}
        live.update(p.fingerprint for p in population)
        self._transfer_pool = {fp: entry for fp, entry
                               in self._transfer_pool.items()
                               if fp in live}

    def _record_transfer(self, front: ParetoFront) -> None:
        """Publish the final front into the store's transfer index.

        The front archives stripped points, so behaviors come from the
        transfer pool.  Front members inherited from a pre-resume
        process whose behaviors are no longer in memory are skipped —
        the recorded front may be a subset after a resume.
        """
        entries = [self._transfer_pool[p.fingerprint]
                   for p in front.sorted_points()
                   if p.fingerprint in self._transfer_pool]
        if not entries:
            return
        try:
            self.store.record_transfer(
                self.run_fingerprint,
                behavior_fingerprint(self.behavior),
                self._transfer_features(), entries)
        except Exception as exc:  # pickling oddities must not kill a run
            warnings.warn(f"cannot record warm-start transfer: {exc}",
                          RunStoreWarning, stacklevel=2)

    # -- evaluation -----------------------------------------------------
    def _resolve_one(self, behavior: Behavior, engine: EvaluationEngine
                     ) -> Tuple[str, StoredEval]:
        key = RunStore.key_for(self._context_fp, behavior)
        record = self.store.get(key)
        if record is None:
            metrics = self._measure(engine.evaluate(behavior))
            self.store.put(key, metrics)
            record = StoredEval(metrics)
        return key, record

    def _evaluate_pairs(self,
                        pairs: Sequence[Tuple[Behavior,
                                              Tuple[str, ...]]],
                        engine: EvaluationEngine,
                        baseline_length: float
                        ) -> Tuple[List[DesignPoint], int]:
        """Score candidates through the store; returns (points, how
        many actually had to be scheduled)."""
        keyed = [(behavior, lineage,
                  RunStore.key_for(self._context_fp, behavior))
                 for behavior, lineage in pairs]
        resolved: Dict[str, StoredEval] = {}
        misses: List[Tuple[Behavior, str]] = []
        for behavior, _lineage, key in keyed:
            if key in resolved:
                # Duplicate within the generation: counts as a hit.
                self.store.stats.hits += 1
                continue
            record = self.store.get(key)
            if record is not None:
                resolved[key] = record
            else:
                resolved[key] = StoredEval(None)  # placeholder
                misses.append((behavior, key))
        scheduled = len(misses)
        if misses:
            evaluated = engine.evaluate_batch(
                [(behavior, ()) for behavior, _ in misses])
            for (behavior, key), ev in zip(misses, evaluated):
                metrics = self._measure(ev)
                self.store.put(key, metrics)
                resolved[key] = StoredEval(metrics)
        points: List[DesignPoint] = []
        for behavior, lineage, key in keyed:
            record = resolved[key]
            if not record.feasible:
                continue
            points.append(self._point(key, behavior, lineage, record,
                                      baseline_length))
        return points, scheduled

    def _evaluate_pairs_streaming(self,
                                  pairs: Sequence[Tuple[Behavior,
                                                        Tuple[str, ...]]],
                                  engine: EvaluationEngine,
                                  baseline_length: float,
                                  front: ParetoFront,
                                  population: Sequence[DesignPoint],
                                  rng: random.Random, *,
                                  speculate: bool
                                  ) -> Tuple[List[DesignPoint], int]:
        """Streamed twin of :meth:`_evaluate_pairs`.

        Store lookups resolve hits upfront exactly as the barrier path
        does; the misses then flow through
        :meth:`~repro.core.engine.EvaluationEngine.evaluate_stream`.
        As each result lands it is measured and persisted immediately
        (that work overlaps in-flight evaluations), while **front
        admission** goes through an in-order commit: a pair is admitted
        only once every earlier pair is resolved, so ``front.add`` sees
        points in exactly the barrier path's order and the final front
        is byte-identical.

        When the pool has idle tail slots and ``speculate`` is set, the
        input generator appends predicted next-generation candidates
        (see :meth:`_speculative_input`); their results only warm the
        engine cache and the run store — they are never admitted here.
        Speculative evaluations still running once every real result
        has landed do not delay the generation: they are detached,
        carried on the engine across the boundary, and adopted by the
        next generation's stream.
        """
        from ..stream import (AdmissionPolicy, InOrderCommitter,
                              available_cpus)
        policy = AdmissionPolicy()
        stats = engine.stream_stats
        keyed = [(behavior, lineage,
                  RunStore.key_for(self._context_fp, behavior))
                 for behavior, lineage in pairs]
        resolved: Dict[str, StoredEval] = {}
        pending_keys: set = set()
        misses: List[Tuple[Behavior, str]] = []
        for behavior, _lineage, key in keyed:
            if key in resolved or key in pending_keys:
                # Duplicate within the generation: counts as a hit.
                self.store.stats.hits += 1
                continue
            record = self.store.get(key)
            if record is not None:
                resolved[key] = record
            else:
                pending_keys.add(key)
                misses.append((behavior, key))
        scheduled = len(misses)
        n_real = len(misses)

        points: List[DesignPoint] = []
        next_pair = 0

        def commit_ready() -> None:
            # Admit the contiguous prefix of resolved pairs, in pair
            # order — the same order the barrier path offers them.
            nonlocal next_pair
            while next_pair < len(keyed):
                behavior, lineage, key = keyed[next_pair]
                record = resolved.get(key)
                if record is None:
                    break
                next_pair += 1
                if not record.feasible:
                    continue
                point = self._point(key, behavior, lineage, record,
                                    baseline_length)
                points.append(point)
                front.add(point)

        commit_ready()
        if not misses:
            assert next_pair == len(keyed)
            return points, scheduled

        committer = InOrderCommitter()
        spec_keys: List[str] = []
        # Detached (carried-over) speculation needs the engine cache to
        # hand results across stream boundaries, and only pays when
        # there is idle parallel capacity to fill: on a single-CPU
        # host every speculative cycle is stolen from the pipeline
        # itself, so the admission policy turns it off.
        do_speculate = (speculate and policy.speculate
                        and engine.workers >= 2
                        and engine.cache.max_entries > 0
                        and available_cpus() >= 2)

        def feed():
            for behavior, _key in misses:
                yield (behavior, ())
            if do_speculate:
                yield from self._speculative_input(
                    population, points, rng, resolved, pending_keys,
                    spec_keys, committer, n_real, policy, stats,
                    engine)

        for mi, ev in engine.evaluate_stream(feed(), policy=policy,
                                             stats=stats):
            metrics = self._measure(ev)
            if mi >= n_real:
                # Speculative result: warm the store, nothing else.
                self.store.put(spec_keys[mi - n_real], metrics)
                continue
            _behavior, key = misses[mi]
            self.store.put(key, metrics)
            for _idx, (k, record) in committer.offer(
                    mi, (key, StoredEval(metrics))):
                pending_keys.discard(k)
                resolved[k] = record
            commit_ready()
        if committer.max_depth > stats.max_reorder_depth:
            stats.max_reorder_depth = committer.max_depth
        assert next_pair == len(keyed)
        return points, scheduled

    def _speculative_input(self, population: Sequence[DesignPoint],
                           points: List[DesignPoint],
                           rng: random.Random,
                           resolved: Dict[str, StoredEval],
                           pending_keys: set,
                           spec_keys: List[str],
                           committer, n_real: int, policy, stats,
                           engine: EvaluationEngine):
        """Predicted next-generation candidates for idle tail slots.

        ``nsga2_select`` is RNG-free and the exploration RNG is consumed
        only inside ``expand_candidates``, so once the current
        generation's expansion has drawn from it, a *clone* of the RNG
        reproduces exactly the sample the next expansion will draw.

        Timing is everything here, and the stream's ``None`` protocol
        provides it: the feeder yields ``None`` ("no work yet") until
        *every* real result of this generation has committed.  At that
        moment the prediction is exact — the selection input is the
        complete point set the real ``_next_population`` will see, and
        the cloned RNG replays the exact expansion draw — so the
        candidates yielded are precisely the next generation's cache
        misses, in its pair order.  Speculating any earlier trades
        that certainty for wasted evaluations; measured on the bench
        campaigns, the trade never pays.

        The candidates are yielded as *detachable* items: the stream
        fills its window with them but never waits for them — the
        generation ends the instant its own results are in, and the
        still-running futures are carried on the engine for the next
        generation's stream to adopt mid-flight.  The effect is a
        software pipeline across the generation boundary: workers chew
        generation ``g+1``'s schedules while the main process runs
        generation ``g``'s selection, expansion, store lookups and
        checkpoint write.

        Backpressure still applies: if real results sit in the reorder
        buffer (an adopted straggler landed out of order), candidates
        are shed rather than submitted — the stream must retire real
        work first.
        """
        while committer.next_index < n_real:
            yield None
        try:
            predicted = self._predict_next_generation(population,
                                                      points, rng)
        except ReproError:
            return
        limit = policy.effective_speculation(engine.workers)
        shed_at = policy.effective_shed_backlog(engine.workers)
        seen: set = set()
        for behavior, _lineage in predicted:
            if len(spec_keys) >= limit:
                break
            key = RunStore.key_for(self._context_fp, behavior)
            if (key in resolved or key in pending_keys or key in seen):
                continue
            seen.add(key)
            if self.store.get(key) is not None:
                continue
            if committer.depth > shed_at:
                stats.shed += 1
                continue
            stats.speculated += 1
            spec_keys.append(key)
            yield (behavior, (), True)

    def _predict_next_generation(self,
                                 population: Sequence[DesignPoint],
                                 points: Sequence[DesignPoint],
                                 rng: random.Random
                                 ) -> List[Tuple[Behavior,
                                                 Tuple[str, ...]]]:
        """Expansion of the predicted next population, via a cloned RNG
        (the real RNG must stay untouched — it drives the actual next
        expansion)."""
        predicted = self._next_population(population, list(points))
        seeds = [(p.behavior, p.lineage) for p in predicted
                 if p.behavior is not None]
        if not seeds:
            return []
        clone = random.Random()
        clone.setstate(rng.getstate())
        return expand_candidates(
            self.transforms, seeds, clone,
            max_per_seed=self.config.max_candidates_per_seed,
            driver=self.driver, tracer=NULL_TRACER)

    def _measure(self, evaluated: Evaluated
                 ) -> Optional[DesignMetrics]:
        """Evaluated schedule → raw metrics (None if infeasible)."""
        result = evaluated.result
        if result is None:
            return None
        cfg = self.config
        try:
            est = estimate_power(result.stg, result.behavior.graph,
                                 self.library, vdd=cfg.vdd,
                                 cycle_time=cfg.cycle_time,
                                 visits=result.expected_visits())
            area = total_area(result)
        except ReproError:
            return None
        return DesignMetrics(length=result.average_length(),
                             energy=est.total_energy, area=area)

    def _point(self, key: str, behavior: Behavior,
               lineage: Tuple[str, ...], record: StoredEval,
               baseline_length: float) -> DesignPoint:
        cfg = self.config
        assert record.metrics is not None
        objectives = objectives_from_metrics(
            record.metrics, baseline_length, vdd=cfg.vdd, vt=cfg.vt,
            cycle_time=cfg.cycle_time)
        self._transfer_pool[key] = (behavior, tuple(lineage))
        return DesignPoint(key, tuple(lineage), record.metrics,
                           objectives, behavior)

    def _next_population(self, population: Sequence[DesignPoint],
                         points: Sequence[DesignPoint]
                         ) -> List[DesignPoint]:
        pool: List[DesignPoint] = []
        seen = set()
        for p in list(population) + list(points):
            if p.fingerprint in seen or p.behavior is None:
                continue
            seen.add(p.fingerprint)
            pool.append(p)
        return nsga2_select(pool, self.config.population_size)

    # -- checkpointing --------------------------------------------------
    def _save_checkpoint(self, generation: int, rng: random.Random,
                         population: Sequence[DesignPoint],
                         front: ParetoFront,
                         telemetry: ExploreTelemetry,
                         baseline_length: float) -> None:
        doc = {
            "schema": CHECKPOINT_SCHEMA,
            "run": self.run_fingerprint,
            "generation": generation,
            "rng_state": rng.getstate(),
            "population": list(population),
            "front": front.sorted_points(),
            "baseline_length": baseline_length,
            "records": list(telemetry.generations),
        }
        path = self.checkpoint
        try:
            atomic_write_bytes(
                path, pickle.dumps(doc,
                                   protocol=pickle.HIGHEST_PROTOCOL))
        except OSError as exc:
            raise ExploreError(
                f"cannot write checkpoint {path}: {exc}") from exc

    def _load_checkpoint(self) -> Optional[dict]:
        path = self.checkpoint
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                doc = pickle.load(handle)
        # Unpickling garbage can raise nearly anything (ValueError,
        # ImportError, EOFError, ...); every failure means the same
        # thing here.
        except Exception as exc:
            raise ExploreError(
                f"checkpoint {path} is unreadable ({exc}); delete it "
                f"to start over") from exc
        if doc.get("schema") != CHECKPOINT_SCHEMA:
            raise ExploreError(
                f"checkpoint {path} has schema {doc.get('schema')!r}; "
                f"this build expects {CHECKPOINT_SCHEMA}")
        if doc.get("run") != self.run_fingerprint:
            raise ExploreError(
                f"checkpoint {path} belongs to a different run "
                f"configuration; delete it or match the original "
                f"seed/config")
        return doc

    # -- signals --------------------------------------------------------
    def _install_sigint(self):
        if threading.current_thread() is not threading.main_thread():
            return None
        def handler(signum, frame):
            if self._stop_requested:
                raise KeyboardInterrupt
            self.request_stop()
        try:
            previous = signal.getsignal(signal.SIGINT)
            signal.signal(signal.SIGINT, handler)
            return previous
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            return None

    def _restore_sigint(self, previous) -> None:
        if previous is None:
            return
        try:
            signal.signal(signal.SIGINT, previous)
        except (ValueError, OSError):  # pragma: no cover
            pass

"""The content-addressed on-disk run store.

Every design the explorer evaluates is persisted under a key extending
the WL-hash scheme of :mod:`repro.core.evalcache`::

    key = digest(context_fingerprint ":" behavior_fingerprint)

where the context fingerprint (:func:`repro.core.engine
.context_fingerprint`, *without* an objective) pins the library,
allocation, scheduler configuration and branch probabilities, and the
behavior fingerprint is invariant under node renumbering.  Records hold
objective-independent raw metrics (schedule length, energy, area), so
one evaluation serves throughput, power *and* area scoring — and every
later run or concurrent process sharing the context.

Layout, durability, and failure model:

* ``<root>/v1/<key[:2]>/<key>.json`` — one JSON record per design, in a
  fan-out of 256 subdirectories; the ``v1`` segment is the layout
  version, and each record carries a ``schema`` field besides;
* writes go to a temp file in the destination directory, are
  fsynced, and are published with ``os.replace``, so readers
  (including other processes) never observe a half-written record and a
  machine crash never publishes a torn one — a writer killed mid-write
  leaves at most a stray ``*.tmp`` file that every reader ignores;
* concurrent writers are harmless: records are content-addressed, so
  two processes racing on one key publish byte-identical documents and
  whichever ``os.replace`` lands last wins.  A writer that loses the
  race in an environment where replacement itself fails (e.g. a
  same-key destination held open on an exotic filesystem) treats the
  other writer's published record as its own success;
* loading is corruption-tolerant: a truncated, unparsable, wrong-schema
  or wrong-shape record is *skipped with a warning* (a
  :class:`RunStoreWarning`) and treated as a miss — the next evaluation
  simply rewrites it.

The same durability discipline is exported as :func:`atomic_write_text`
/ :func:`atomic_write_bytes` for the exploration checkpoints and the
service layer's job queue and shard board
(:mod:`repro.service`), which share this store's crash model.

Hit/miss statistics reuse :class:`repro.core.evalcache.CacheStats`, the
same object the in-memory evaluation cache reports through
``repro.api``.
"""

from __future__ import annotations

import json
import math
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..cdfg.ir import _digest
from ..cdfg.regions import Behavior
from ..core.evalcache import CacheStats, behavior_fingerprint
from ..errors import ExploreError
from .pareto import DesignMetrics

#: Record schema version written into (and required of) every entry.
STORE_SCHEMA = 1

#: Layout version directory under the store root.
LAYOUT_DIR = "v1"

#: Warm-start transfer records live beside the design records, one
#: (meta JSON + pickled front) pair per completed exploration run.
TRANSFER_DIR = "transfer"

#: Schema version of the transfer meta documents.
TRANSFER_SCHEMA = 1

#: Environment knob consulted when no explicit store root is given.
STORE_ENV = "REPRO_STORE"


def default_store_root() -> str:
    """The store directory when none is specified: ``$REPRO_STORE`` or
    ``.repro-store`` under the current directory."""
    return os.environ.get(STORE_ENV, "").strip() or ".repro-store"


def atomic_write_bytes(path: Union[str, "os.PathLike[str]"],
                       data: bytes, *, durable: bool = True) -> None:
    """Atomically (and, by default, durably) publish ``data`` at
    ``path``.

    Writes to a same-directory temp file, flushes and fsyncs it
    (rename-only atomicity protects concurrent readers, but *not*
    against a machine crash losing the data blocks of an
    already-renamed file), then publishes with ``os.replace``.  Readers
    never observe a partial file; a crashed writer leaves only an
    ignorable ``*.tmp`` sibling.  Used by the run store, the explore
    checkpoints, and the service layer's job queue and shard board.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, "os.PathLike[str]"], data: str,
                      *, durable: bool = True) -> None:
    """Text convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, data.encode("utf-8"), durable=durable)


class RunStoreWarning(UserWarning):
    """A run-store entry was unreadable and will be re-evaluated."""


class StoredEval:
    """One persisted evaluation outcome.

    ``metrics`` is ``None`` for a design the scheduler rejected under
    this context — remembering infeasibility saves rescheduling it in
    every later run.
    """

    __slots__ = ("metrics",)

    def __init__(self, metrics: Optional[DesignMetrics]) -> None:
        self.metrics = metrics

    @property
    def feasible(self) -> bool:
        return self.metrics is not None


class RunStore:
    """Content-addressed, multi-process-safe store of design metrics.

    A thin in-memory layer (plain dict, unbounded within a run) sits in
    front of the directory so repeated lookups of one key cost one file
    read at most.  Pass a shared ``stats`` object to aggregate counters
    with another cache; otherwise the store owns a fresh
    :class:`CacheStats`.
    """

    def __init__(self, root: Union[str, "os.PathLike[str]"], *,
                 stats: Optional[CacheStats] = None) -> None:
        self.root = Path(root)
        self.stats = stats if stats is not None else CacheStats()
        #: records skipped because they could not be read back
        self.corrupt_entries = 0
        self._mem: Dict[str, StoredEval] = {}
        try:
            (self.root / LAYOUT_DIR).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ExploreError(
                f"cannot create run store at {self.root}: {exc}") from exc

    # -- keys -----------------------------------------------------------
    @staticmethod
    def key_for(context_fp: str, behavior: Behavior) -> str:
        """Store key of ``behavior`` under a fixed evaluation context."""
        return _digest((context_fp + ":"
                        + behavior_fingerprint(behavior)).encode()
                       ).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / LAYOUT_DIR / key[:2] / f"{key}.json"

    # -- lookup ---------------------------------------------------------
    def get(self, key: str) -> Optional[StoredEval]:
        """Look up ``key``; None (a miss) if absent or unreadable."""
        cached = self._mem.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        record = self._read_record(key)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._mem[key] = record
        return record

    def _read_record(self, key: str) -> Optional[StoredEval]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            return _decode(doc)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.corrupt_entries += 1
            warnings.warn(
                f"run store: skipping unreadable entry {path.name} "
                f"({exc}); it will be re-evaluated", RunStoreWarning,
                stacklevel=3)
            return None

    # -- insertion ------------------------------------------------------
    def put(self, key: str, metrics: Optional[DesignMetrics]) -> None:
        """Persist one evaluation (atomically) and cache it in memory."""
        entry = StoredEval(metrics)
        self._mem[key] = entry
        doc: Dict[str, object] = {"schema": STORE_SCHEMA,
                                  "feasible": entry.feasible}
        if metrics is not None:
            doc.update(metrics.as_dict())
        path = self._path(key)
        try:
            atomic_write_text(path, json.dumps(doc, sort_keys=True))
        except OSError as exc:
            # Records are content-addressed: if a concurrent writer got
            # the (byte-identical) record down first, its success is
            # ours.  Otherwise a read-only or full disk degrades to
            # in-memory behavior.
            if self._read_record(key) is not None:
                return
            warnings.warn(f"run store: cannot persist {path.name}: "
                          f"{exc}", RunStoreWarning, stacklevel=2)

    # -- maintenance ----------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.scan())

    def scan(self) -> Iterator[Tuple[str, Optional[StoredEval]]]:
        """Iterate (key, record) over the on-disk entries.

        Unreadable entries yield ``(key, None)`` after warning, so
        callers can garbage-collect them.
        """
        layout = self.root / LAYOUT_DIR
        if not layout.is_dir():
            return
        for path in sorted(layout.glob("*/*.json")):
            yield path.stem, self._read_record(path.stem)

    # -- warm-start transfer index --------------------------------------
    def record_transfer(self, run_fp: str, behavior_fp: str,
                        features: Dict[str, float],
                        entries: List[Tuple[Behavior,
                                            Tuple[str, ...]]]) -> None:
        """Persist one finished run's front for cross-run warm starts.

        ``features`` is the run's *context coordinate* (Vdd, Vt, cycle
        time, clock, per-FU allocation counts — see
        :meth:`repro.explore.runner.ExploreRunner` for the canonical
        encoding); ``entries`` are the front's (behavior, lineage)
        pairs.  The pickled payload is published before the meta
        document, so a reader that sees the meta always finds the
        payload; both writes are atomic and last-writer-wins, which is
        correct because a run fingerprint determines its front.
        """
        base = self.root / TRANSFER_DIR
        doc = {
            "schema": TRANSFER_SCHEMA,
            "run": run_fp,
            "behavior": behavior_fp,
            "features": {k: float(v) for k, v in sorted(features.items())},
            "front_size": len(entries),
            "lineages": [list(lineage) for _, lineage in entries],
        }
        try:
            atomic_write_bytes(base / f"{run_fp}.pkl",
                               pickle.dumps(entries,
                                            pickle.HIGHEST_PROTOCOL))
            atomic_write_text(base / f"{run_fp}.json",
                              json.dumps(doc, sort_keys=True))
        except OSError as exc:
            warnings.warn(f"run store: cannot persist transfer record "
                          f"for run {run_fp[:12]}: {exc}",
                          RunStoreWarning, stacklevel=2)

    def transfers(self) -> List[Dict[str, object]]:
        """All readable transfer meta documents, sorted by run
        fingerprint (deterministic; unreadable records are skipped with
        a warning, like design records)."""
        base = self.root / TRANSFER_DIR
        if not base.is_dir():
            return []
        out: List[Dict[str, object]] = []
        for path in sorted(base.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
                if not isinstance(doc, dict) \
                        or doc.get("schema") != TRANSFER_SCHEMA \
                        or not isinstance(doc.get("features"), dict):
                    raise ValueError("bad transfer record shape")
            except (OSError, ValueError, KeyError, TypeError) as exc:
                self.corrupt_entries += 1
                warnings.warn(
                    f"run store: skipping unreadable transfer record "
                    f"{path.name} ({exc})", RunStoreWarning,
                    stacklevel=2)
                continue
            out.append(doc)
        return out

    def load_transfer(self, run_fp: str
                      ) -> Optional[List[Tuple[Behavior,
                                               Tuple[str, ...]]]]:
        """The pickled front of one transfer record (None if
        unreadable)."""
        path = self.root / TRANSFER_DIR / f"{run_fp}.pkl"
        try:
            with open(path, "rb") as handle:
                entries = pickle.load(handle)
            return [(behavior, tuple(lineage))
                    for behavior, lineage in entries]
        except FileNotFoundError:
            return None
        except Exception as exc:  # pickle raises almost anything
            self.corrupt_entries += 1
            warnings.warn(f"run store: skipping unreadable transfer "
                          f"payload {path.name} ({exc})",
                          RunStoreWarning, stacklevel=2)
            return None

    def nearest_transfer(self, behavior_fp: str,
                         features: Dict[str, float], *,
                         exclude: Optional[str] = None
                         ) -> Optional[Dict[str, object]]:
        """The closest prior run's transfer record, or None.

        Candidates must be fronts of the *same input behavior*
        (canonical fingerprint equality — transferring another
        circuit's rewrites is meaningless); among those, closeness is
        the L2 distance between feature vectors over the union of
        feature keys (a missing key counts as 0), with the run
        fingerprint breaking exact ties so the pick is deterministic.
        ``exclude`` skips the current run's own record.
        """
        best: Optional[Tuple[float, str, Dict[str, object]]] = None
        for doc in self.transfers():
            if doc.get("behavior") != behavior_fp:
                continue
            run = str(doc.get("run"))
            if exclude is not None and run == exclude:
                continue
            theirs = {str(k): float(v)
                      for k, v in doc["features"].items()}
            keys = set(theirs) | set(features)
            dist = math.sqrt(sum(
                (features.get(k, 0.0) - theirs.get(k, 0.0)) ** 2
                for k in keys))
            if best is None or (dist, run) < (best[0], best[1]):
                best = (dist, run, doc)
        return best[2] if best is not None else None


def _decode(doc: Dict[str, object]) -> StoredEval:
    """Validate and decode one record (raises on any shape problem)."""
    if not isinstance(doc, dict):
        raise ValueError(f"record is {type(doc).__name__}, not an object")
    if doc.get("schema") != STORE_SCHEMA:
        raise ValueError(f"schema {doc.get('schema')!r} != {STORE_SCHEMA}")
    if not doc["feasible"]:
        return StoredEval(None)
    metrics = DesignMetrics(length=float(doc["length"]),
                            energy=float(doc["energy"]),
                            area=float(doc["area"]))
    if not (metrics.length > 0):
        raise ValueError(f"non-positive length {metrics.length!r}")
    return StoredEval(metrics)

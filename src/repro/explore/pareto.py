"""Pareto machinery: dominance, NSGA-II selection, the exported front.

The FACT paper optimizes throughput *or* power; its Tables 2–3 are two
points on one trade-off surface.  This module supplies the
multi-objective layer: every candidate design is scored on three costs
(all minimized) —

* **throughput cost** — average schedule length in cycles (its inverse
  is the paper's throughput metric);
* **power cost** — the Section-2.2 estimate with iso-throughput Vdd
  scaling against the untransformed baseline (exactly the power
  objective of :mod:`repro.core.objectives`, minus the search's
  datapath tie-break);
* **area cost** — total normalized area from the synthesis substrate.

Selection is NSGA-II style: non-dominated sorting into fronts, then
crowding-distance truncation of the last admitted front.  Everything is
deterministic — ties break on the content fingerprint, never on object
identity or dict order — because the exploration runner promises
byte-identical exported fronts across checkpoint/resume cycles.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cdfg.regions import Behavior
from ..errors import ExploreError
from ..power.vdd import scaled_vdd_for_schedule

#: Version stamp of the exported front documents.
FRONT_SCHEMA = 1

#: Objective labels, in tuple order.
OBJECTIVE_NAMES = ("throughput_cost", "power_cost", "area_cost")


@dataclass(frozen=True)
class DesignMetrics:
    """Objective-independent raw measurements of one scheduled design.

    These are what the run store persists: they do not depend on the
    Vdd-scaling baseline, so one evaluation serves every exploration
    run that shares the scheduling context.
    """

    length: float   #: average schedule length, cycles
    energy: float   #: per-execution energy, Vdd²-normalized units
    area: float     #: total normalized area

    def as_dict(self) -> Dict[str, float]:
        return {"length": self.length, "energy": self.energy,
                "area": self.area}


def objectives_from_metrics(metrics: DesignMetrics,
                            baseline_length: float, *,
                            vdd: float = 5.0, vt: float = 1.0,
                            cycle_time: float = 1.0
                            ) -> Tuple[float, float, float]:
    """Raw metrics → the (throughput, power, area) cost tuple.

    The power term mirrors ``Objective(POWER).evaluate``: a design
    faster than the baseline is slowed back to the baseline length by
    lowering Vdd (quadratic energy savings); a slower design violates
    the iso-throughput constraint and is penalized proportionally.
    """
    length = metrics.length
    if length <= baseline_length:
        v = scaled_vdd_for_schedule(length, baseline_length,
                                    vdd_initial=vdd, vt=vt)
        power = metrics.energy * v ** 2 / (baseline_length * cycle_time)
    else:
        power = (metrics.energy * vdd ** 2 / (length * cycle_time)
                 * (length / baseline_length))
    return (length, power, metrics.area)


@dataclass
class DesignPoint:
    """One evaluated design in the exploration space.

    ``behavior`` is carried while the point can still seed further
    transformations; archive copies and exported fronts drop it (see
    :meth:`stripped`).
    """

    fingerprint: str
    lineage: Tuple[str, ...]
    metrics: DesignMetrics
    objectives: Tuple[float, float, float]
    behavior: Optional[Behavior] = None

    def stripped(self) -> "DesignPoint":
        """A copy without the behavior (for checkpoints and exports)."""
        return DesignPoint(self.fingerprint, self.lineage, self.metrics,
                           self.objectives, None)

    def as_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "lineage": list(self.lineage),
            "metrics": self.metrics.as_dict(),
            "objectives": dict(zip(OBJECTIVE_NAMES, self.objectives)),
        }


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if cost vector ``a`` Pareto-dominates ``b`` (minimization)."""
    no_worse = all(x <= y for x, y in zip(a, b))
    return no_worse and any(x < y for x, y in zip(a, b))


def non_dominated_sort(objectives: Sequence[Sequence[float]]
                       ) -> List[List[int]]:
    """Deb's fast non-dominated sort.

    Returns index lists, front by front (front 0 = non-dominated).
    Indices within a front keep their input order, so the sort is
    deterministic for deterministic input order.
    """
    n = len(objectives)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objectives[j], objectives[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    for i in range(n):
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        nxt: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current += 1
        fronts.append(sorted(nxt))
    fronts.pop()  # the terminating empty front
    return fronts


def crowding_distance(objectives: Sequence[Sequence[float]],
                      front: Sequence[int]) -> Dict[int, float]:
    """NSGA-II crowding distance of each index in ``front``."""
    distance = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    n_obj = len(objectives[front[0]])
    for m in range(n_obj):
        ordered = sorted(front, key=lambda i: objectives[i][m])
        lo = objectives[ordered[0]][m]
        hi = objectives[ordered[-1]][m]
        distance[ordered[0]] = distance[ordered[-1]] = float("inf")
        span = hi - lo
        if span <= 0:
            continue
        for prev, cur, nxt in zip(ordered, ordered[1:], ordered[2:]):
            if distance[cur] != float("inf"):
                distance[cur] += ((objectives[nxt][m]
                                   - objectives[prev][m]) / span)
    return distance


def nsga2_select(points: Sequence[DesignPoint],
                 size: int) -> List[DesignPoint]:
    """Select the next population: fronts first, crowding to truncate.

    Ties in crowding distance break on the fingerprint so the selection
    is a pure function of the candidate multiset.
    """
    if len(points) <= size:
        return list(points)
    objectives = [p.objectives for p in points]
    chosen: List[int] = []
    for front in non_dominated_sort(objectives):
        if len(chosen) + len(front) <= size:
            chosen.extend(front)
            if len(chosen) == size:
                break
            continue
        distance = crowding_distance(objectives, front)
        ranked = sorted(front,
                        key=lambda i: (-distance[i],
                                       points[i].fingerprint))
        chosen.extend(ranked[:size - len(chosen)])
        break
    return [points[i] for i in chosen]


class ParetoFront:
    """The elitist archive of every non-dominated design seen so far.

    Updates are deterministic: a new point is admitted iff no archived
    point dominates it (duplicates by fingerprint are merged), and
    admitting it drops every archived point it dominates.
    """

    def __init__(self, baseline_length: Optional[float] = None,
                 points: Optional[Sequence[DesignPoint]] = None) -> None:
        self.baseline_length = baseline_length
        self._points: List[DesignPoint] = []
        self._by_fp: Dict[str, DesignPoint] = {}
        for p in points or ():
            self.add(p)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self.sorted_points())

    # -- growth ---------------------------------------------------------
    def add(self, point: DesignPoint) -> bool:
        """Offer a point to the archive; True if it was admitted.

        A point is rejected if an archived point dominates it *or*
        scores identically (one representative per objective vector —
        the first seen, which is deterministic because the exploration
        loop offers points in deterministic order).
        """
        if point.fingerprint in self._by_fp:
            return False
        for existing in self._points:
            if (existing.objectives == point.objectives
                    or dominates(existing.objectives,
                                 point.objectives)):
                return False
        kept = [p for p in self._points
                if not dominates(point.objectives, p.objectives)]
        dropped = len(self._points) - len(kept)
        if dropped:
            self._points = kept
            self._by_fp = {p.fingerprint: p for p in kept}
        stripped = point.stripped()
        self._points.append(stripped)
        self._by_fp[stripped.fingerprint] = stripped
        return True

    def update(self, points: Sequence[DesignPoint]) -> int:
        """Offer many points; returns how many were admitted."""
        return sum(1 for p in points if self.add(p))

    # -- views ----------------------------------------------------------
    def sorted_points(self) -> List[DesignPoint]:
        """Members in canonical order (objectives, then fingerprint)."""
        return sorted(self._points,
                      key=lambda p: (p.objectives, p.fingerprint))

    def best(self, objective: int) -> DesignPoint:
        """The front's endpoint for one objective axis (0/1/2)."""
        if not self._points:
            raise ExploreError("the front is empty")
        return min(self._points,
                   key=lambda p: (p.objectives[objective],
                                  p.fingerprint))

    def hypervolume_proxy(self) -> float:
        """A cheap monotone stand-in for the dominated hypervolume.

        Sum over members of the normalized rectangle each dominates
        below the front's nadir (componentwise worst + 5% margin).
        Overlaps are double-counted and the reference box is the
        front's own extent, so this is *not* the true hypervolume and
        is not monotone across updates — it is a deterministic,
        scale-free spread indicator (0 for an empty front, 1 for a
        single point, up to ``len(front)``) that is cheap at any front
        size, which is all the per-generation telemetry needs.
        """
        if not self._points:
            return 0.0
        n_obj = len(self._points[0].objectives)
        ref = [max(p.objectives[m] for p in self._points) * 1.05 + 1e-12
               for m in range(n_obj)]
        ideal = [min(p.objectives[m] for p in self._points)
                 for m in range(n_obj)]
        scale = [max(ref[m] - ideal[m], 1e-12) for m in range(n_obj)]
        total = 0.0
        for p in self._points:
            vol = 1.0
            for m in range(n_obj):
                vol *= max(ref[m] - p.objectives[m], 0.0) / scale[m]
            total += vol
        return total

    # -- export ---------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": FRONT_SCHEMA,
            "objectives": list(OBJECTIVE_NAMES),
            "baseline_length": self.baseline_length,
            "points": [p.as_dict() for p in self.sorted_points()],
        }

    def to_json(self) -> str:
        """Canonical JSON document (stable bytes for identical fronts)."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    def to_csv(self) -> str:
        """Canonical CSV: one row per member, canonical order."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(("fingerprint",) + OBJECTIVE_NAMES
                        + ("length", "energy", "area", "lineage"))
        for p in self.sorted_points():
            writer.writerow((p.fingerprint,)
                            + tuple(repr(v) for v in p.objectives)
                            + (repr(p.metrics.length),
                               repr(p.metrics.energy),
                               repr(p.metrics.area),
                               " | ".join(p.lineage)))
        return buf.getvalue()

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "ParetoFront":
        """Rebuild a front from :meth:`as_dict` / exported JSON."""
        if doc.get("schema") != FRONT_SCHEMA:
            raise ExploreError(
                f"unsupported front schema {doc.get('schema')!r} "
                f"(expected {FRONT_SCHEMA})")
        front = cls(baseline_length=doc.get("baseline_length"))
        for entry in doc.get("points", []):
            metrics = DesignMetrics(**entry["metrics"])
            objectives = tuple(entry["objectives"][name]
                               for name in OBJECTIVE_NAMES)
            front.add(DesignPoint(entry["fingerprint"],
                                  tuple(entry["lineage"]),
                                  metrics, objectives))
        return front

    @classmethod
    def from_json(cls, text: str) -> "ParetoFront":
        return cls.from_dict(json.loads(text))

"""Design-space exploration: joint throughput / power / area search.

FACT's two single-objective modes (Tables 2–3 of the paper) are two
points on one trade-off surface; this subsystem maps the surface:

* :mod:`repro.explore.pareto` — dominance, non-dominated sorting,
  crowding-distance (NSGA-II) selection, and the exported
  :class:`ParetoFront` with canonical JSON/CSV serialization;
* :mod:`repro.explore.store` — the content-addressed on-disk
  :class:`RunStore` sharing evaluations across runs and processes
  (atomic writes, schema versioning, corruption-tolerant loads);
* :mod:`repro.explore.runner` — the checkpointed, SIGINT-safe,
  resumable :class:`ExploreRunner` generational loop.

The friendly entry points are ``repro.api.explore`` and the
``repro explore`` CLI subcommand.
"""

from .pareto import (DesignMetrics, DesignPoint, ParetoFront,
                     crowding_distance, dominates, non_dominated_sort,
                     nsga2_select, objectives_from_metrics)
from .runner import (CHECKPOINT_SCHEMA, ExploreConfig, ExploreResult,
                     ExploreRunner)
from .store import (STORE_SCHEMA, RunStore, RunStoreWarning, StoredEval,
                    atomic_write_bytes, atomic_write_text,
                    default_store_root)

__all__ = [
    "CHECKPOINT_SCHEMA", "DesignMetrics", "DesignPoint",
    "ExploreConfig", "ExploreResult", "ExploreRunner", "ParetoFront",
    "RunStore", "RunStoreWarning", "STORE_SCHEMA", "StoredEval",
    "atomic_write_bytes", "atomic_write_text", "crowding_distance",
    "default_store_root", "dominates", "non_dominated_sort",
    "nsga2_select", "objectives_from_metrics",
]
